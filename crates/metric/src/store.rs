//! Structure-of-arrays point storage — the substrate of the distance
//! kernels.
//!
//! Every hot loop of the reproduction bottoms out in pairwise distance
//! evaluations. Individually boxed [`Point`]s make those loops
//! pointer-chases: each distance dereferences two heap allocations. A
//! [`PointStore`] instead keeps *all* coordinates in one contiguous
//! `Vec<f64>` (point `i` occupies `[i·d, (i+1)·d)`) and caches each
//! point's squared norm, so the blocked kernels of [`crate::batch`] can
//! stream coordinates and use the `‖a−b‖² = ‖a‖² + ‖b‖² − 2a·b`
//! factorization.
//!
//! Points are addressed by [`PointId`], a plain index newtype. A
//! [`StoreOracle`] view over a store implements
//! [`Metric<PointId>`](crate::Metric) and overrides the batched methods of
//! [`DistanceOracle`](crate::DistanceOracle) with the kernels, so every
//! generic algorithm in the workspace runs unchanged — only faster — when
//! handed ids instead of boxed points.

use crate::batch::{self, DistCounter, Kernel};
use crate::point::{Point, PointError};
use crate::{DistanceOracle, Metric};
use ukc_pool::Exec;

/// Index of a point inside a [`PointStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PointId(pub usize);

/// Copies `ids` with the element at `position` masked out, preserving
/// order — the slice-level counterpart of [`PointStore::ids_excluding`]
/// for masking a row out of an arbitrary id selection (e.g. the
/// representative slice of a leave-one-out variant). A `position` past
/// the end returns the whole slice.
pub fn mask_row(ids: &[PointId], position: usize) -> Vec<PointId> {
    let mut out = Vec::with_capacity(ids.len().saturating_sub(1));
    for (i, &id) in ids.iter().enumerate() {
        if i != position {
            out.push(id);
        }
    }
    out
}

impl PointId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// The opt-in f32 coordinate mirror streamed by [`Kernel::Tiled`]:
/// rounded coordinates plus squared norms of the *rounded* values,
/// f64-accumulated in [`batch::tile::dot_seq`] order.
#[derive(Clone, Debug, Default, PartialEq)]
struct F32Mirror {
    coords: Vec<f32>,
    norms_sq: Vec<f64>,
}

impl F32Mirror {
    /// Rounds and appends one row, validating that every coordinate stays
    /// finite in f32.
    fn push_row(&mut self, coords: &[f64]) -> Result<(), PointError> {
        let start = self.coords.len();
        for (index, &c) in coords.iter().enumerate() {
            #[allow(clippy::cast_possible_truncation)]
            let r = c as f32;
            if !r.is_finite() {
                self.coords.truncate(start);
                return Err(PointError::F32Overflow { index, value: c });
            }
            self.coords.push(r);
        }
        self.norms_sq.push(norm_sq_seq_of(&self.coords[start..]));
        Ok(())
    }
}

/// Squared norm accumulated in the canonical tiled order (ascending
/// dimension, one f64 accumulator) — exactly
/// [`batch::tile::dot_seq`]`(row, row)`, so the tiled `‖a‖²+‖b‖²−2a·b`
/// cancels to zero for duplicate rows.
fn norm_sq_seq_of<T: batch::tile::Coord>(row: &[T]) -> f64 {
    batch::tile::dot_seq(row, row)
}

/// Contiguous structure-of-arrays storage for fixed-dimension Euclidean
/// points: one flat coordinate buffer plus cached squared norms — one
/// norm per kernel accumulation order (blocked 8-wide tree for
/// [`Kernel::Blocked`], sequential for [`Kernel::Tiled`]), each matching
/// its kernel's dot products so `‖a‖² + ‖b‖² − 2a·b` cancels exactly for
/// `a == b`. [`PointStore::try_enable_f32`] additionally maintains a
/// rounded f32 coordinate mirror for the tiled kernel's bandwidth-bound
/// regimes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PointStore {
    dim: usize,
    coords: Vec<f64>,
    norms_sq: Vec<f64>,
    norms_sq_seq: Vec<f64>,
    f32_mirror: Option<F32Mirror>,
}

impl PointStore {
    /// An empty store of dimension `dim`.
    ///
    /// # Panics
    /// Panics when `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "PointStore dimension must be positive");
        Self {
            dim,
            coords: Vec::new(),
            norms_sq: Vec::new(),
            norms_sq_seq: Vec::new(),
            f32_mirror: None,
        }
    }

    /// An empty store with room for `n` points.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        let mut s = Self::new(dim);
        s.coords.reserve(n * dim);
        s.norms_sq.reserve(n);
        s
    }

    /// Builds a store from a point slice.
    ///
    /// # Panics
    /// Panics when `points` is empty or dimensions disagree.
    pub fn from_points(points: &[Point]) -> Self {
        assert!(!points.is_empty(), "PointStore needs at least one point");
        let mut s = Self::with_capacity(points[0].dim(), points.len());
        for p in points {
            s.push_point(p);
        }
        s
    }

    /// Appends a point given its coordinates, returning its id.
    ///
    /// # Panics
    /// Panics on a dimension mismatch or a non-finite coordinate.
    pub fn push(&mut self, coords: &[f64]) -> PointId {
        self.try_push(coords).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Appends a point, returning a typed error instead of panicking on a
    /// dimension mismatch or non-finite coordinate.
    pub fn try_push(&mut self, coords: &[f64]) -> Result<PointId, PointError> {
        if coords.len() != self.dim {
            return Err(PointError::DimMismatch {
                got: coords.len(),
                expected: self.dim,
            });
        }
        if let Some(index) = coords.iter().position(|c| !c.is_finite()) {
            return Err(PointError::NonFinite {
                index,
                value: coords[index],
            });
        }
        // Validate the f32 mirror first so a rejected push leaves the
        // store untouched.
        if let Some(mirror) = &mut self.f32_mirror {
            mirror.push_row(coords)?;
        }
        let id = PointId(self.norms_sq.len());
        self.coords.extend_from_slice(coords);
        // Each cached norm uses the same summation order as its kernel's
        // dot products, so `‖a‖² + ‖b‖² − 2a·b` cancels exactly for a == b:
        // the blocked tree for `Kernel::Blocked`, sequential for the
        // canonical tiled order.
        self.norms_sq.push(batch::dot_blocked(coords, coords));
        self.norms_sq_seq.push(norm_sq_seq_of(coords));
        Ok(id)
    }

    /// Enables the f32 coordinate mirror for [`Kernel::Tiled`], rounding
    /// every stored point (and all future pushes) to f32 — **opt-in,
    /// never the default**. On success the tiled kernel streams half the
    /// memory per sweep; distances then carry the one-time coordinate
    /// rounding (relative error ~`f32::EPSILON` per coordinate) while all
    /// accumulation stays f64. Idempotent when already enabled.
    ///
    /// Fails with [`PointError::F32Overflow`] — leaving the store exactly
    /// as it was — if any existing coordinate's magnitude exceeds
    /// `f32::MAX`, so the tiled kernel can never see a non-finite
    /// coordinate.
    pub fn try_enable_f32(&mut self) -> Result<(), PointError> {
        if self.f32_mirror.is_some() {
            return Ok(());
        }
        let mut mirror = F32Mirror {
            coords: Vec::with_capacity(self.coords.len()),
            norms_sq: Vec::with_capacity(self.norms_sq.len()),
        };
        for i in 0..self.len() {
            mirror.push_row(self.coords(PointId(i)))?;
        }
        self.f32_mirror = Some(mirror);
        Ok(())
    }

    /// `true` when the f32 mirror is enabled.
    #[inline]
    pub fn has_f32(&self) -> bool {
        self.f32_mirror.is_some()
    }

    /// The f32 mirror's coordinate buffer and sequential-order squared
    /// norms, when enabled.
    #[inline]
    pub fn f32_view(&self) -> Option<(&[f32], &[f64])> {
        self.f32_mirror
            .as_ref()
            .map(|m| (m.coords.as_slice(), m.norms_sq.as_slice()))
    }

    /// The rounded f32 coordinates of point `id`.
    ///
    /// # Panics
    /// Panics when the mirror is disabled or `id` is out of range.
    #[inline]
    pub fn coords_f32(&self, id: PointId) -> &[f32] {
        let m = self.f32_mirror.as_ref().expect("f32 mirror not enabled");
        &m.coords[id.0 * self.dim..(id.0 + 1) * self.dim]
    }

    /// The squared norm of point `id`'s *rounded* coordinates
    /// (f64-accumulated, sequential order).
    ///
    /// # Panics
    /// Panics when the mirror is disabled or `id` is out of range.
    #[inline]
    pub fn norm_sq_f32(&self, id: PointId) -> f64 {
        self.f32_mirror
            .as_ref()
            .expect("f32 mirror not enabled")
            .norms_sq[id.0]
    }

    /// Appends an existing [`Point`].
    ///
    /// # Panics
    /// Panics on a dimension mismatch.
    pub fn push_point(&mut self, p: &Point) -> PointId {
        self.push(p.coords())
    }

    /// Number of stored points.
    #[inline]
    pub fn len(&self) -> usize {
        self.norms_sq.len()
    }

    /// `true` when no points are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.norms_sq.is_empty()
    }

    /// The shared dimension `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The coordinates of point `id`.
    ///
    /// # Panics
    /// Panics when `id` is out of range.
    #[inline]
    pub fn coords(&self, id: PointId) -> &[f64] {
        &self.coords[id.0 * self.dim..(id.0 + 1) * self.dim]
    }

    /// The cached squared norm `‖p‖²` of point `id`.
    #[inline]
    pub fn norm_sq(&self, id: PointId) -> f64 {
        self.norms_sq[id.0]
    }

    /// The whole coordinate buffer (`len() * dim()` values, point-major).
    #[inline]
    pub fn raw_coords(&self) -> &[f64] {
        &self.coords
    }

    /// All cached squared norms, indexed by point.
    #[inline]
    pub fn raw_norms_sq(&self) -> &[f64] {
        &self.norms_sq
    }

    /// The squared norm of point `id` accumulated in the canonical tiled
    /// order (ascending dimension, one f64 accumulator) — the norm cache
    /// [`Kernel::Tiled`] factorizes against.
    #[inline]
    pub fn norm_sq_seq(&self, id: PointId) -> f64 {
        self.norms_sq_seq[id.0]
    }

    /// All sequential-order squared norms, indexed by point.
    #[inline]
    pub fn raw_norms_sq_seq(&self) -> &[f64] {
        &self.norms_sq_seq
    }

    /// Materializes point `id` as an owned [`Point`].
    pub fn point(&self, id: PointId) -> Point {
        Point::new(self.coords(id).to_vec())
    }

    /// The ids `0..len()` in order.
    pub fn ids(&self) -> Vec<PointId> {
        (0..self.len()).map(PointId).collect()
    }

    /// The ids `0..len()` with `skip` masked out, preserving order — the
    /// row mask of the incremental layer: leave-one-out variants share one
    /// store and differ only in the id slice they sweep, so "remove a
    /// point" never copies coordinates. A `skip` outside the store returns
    /// all ids.
    pub fn ids_excluding(&self, skip: PointId) -> Vec<PointId> {
        (0..self.len())
            .filter(|&i| i != skip.0)
            .map(PointId)
            .collect()
    }

    /// Drops every point with index `>= n`, keeping the first `n` rows
    /// (a no-op when `n >= len()`). Ids `0..n` remain valid; higher ids
    /// become dangling. Capacity is retained, so a caller that pushes and
    /// retracts points in a loop (e.g. a streaming summary absorbing a
    /// covered point) does not reallocate.
    pub fn truncate(&mut self, n: usize) {
        self.coords.truncate(n * self.dim);
        self.norms_sq.truncate(n);
        self.norms_sq_seq.truncate(n);
        if let Some(m) = &mut self.f32_mirror {
            m.coords.truncate(n * self.dim);
            m.norms_sq.truncate(n);
        }
    }
}

/// A distance oracle over a [`PointStore`]: implements
/// [`Metric<PointId>`] pairwise and overrides the batched
/// [`DistanceOracle`] methods with the [`crate::batch`] kernels.
///
/// The oracle optionally shares a [`DistCounter`]; every evaluated
/// point-pair bumps it by exactly one, whether computed by the scalar or
/// the blocked kernel, so instrumentation counts are kernel-independent.
///
/// [`StoreOracle::with_exec`] attaches an execution context: batched
/// sweeps over at least [`batch::PAR_MIN_POINTS`] rows then run block-parallel
/// on the pool through the `par_*` kernels of [`crate::batch`]. Chunk
/// boundaries and reduction order are pure functions of the input size,
/// so results — and evaluation counts — are bit-identical for every
/// lane count (the execution-layer determinism contract).
pub struct StoreOracle<'a> {
    store: &'a PointStore,
    kernel: Kernel,
    counter: Option<&'a DistCounter>,
    exec: Exec<'a>,
}

impl<'a> StoreOracle<'a> {
    /// An oracle over `store` using `kernel`, not counting evaluations,
    /// running sequentially.
    pub fn new(store: &'a PointStore, kernel: Kernel) -> Self {
        Self {
            store,
            kernel,
            counter: None,
            exec: Exec::sequential(),
        }
    }

    /// Attaches an evaluation counter (one tick per point-pair).
    pub fn with_counter(mut self, counter: &'a DistCounter) -> Self {
        self.counter = Some(counter);
        self
    }

    /// Attaches an execution context for the batched sweeps.
    pub fn with_exec(mut self, exec: Exec<'a>) -> Self {
        self.exec = exec;
        self
    }

    /// The underlying store.
    pub fn store(&self) -> &'a PointStore {
        self.store
    }

    /// The active kernel.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// The active execution context.
    pub fn exec(&self) -> Exec<'a> {
        self.exec
    }

    #[inline]
    fn tally(&self, n: usize) {
        if let Some(c) = self.counter {
            c.add(n as u64);
        }
    }
}

impl Metric<PointId> for StoreOracle<'_> {
    #[inline]
    fn dist(&self, a: &PointId, b: &PointId) -> f64 {
        self.tally(1);
        batch::pair_dist(self.store, *a, *b, self.kernel)
    }

    fn nearest(&self, a: &PointId, centers: &[PointId]) -> Option<(usize, f64)> {
        self.tally(centers.len());
        batch::par_nearest_center(self.store, centers, *a, self.kernel, self.exec)
    }
}

impl DistanceOracle<PointId> for StoreOracle<'_> {
    fn dists_to_one(&self, points: &[PointId], q: &PointId, out: &mut [f64]) {
        self.tally(points.len());
        batch::par_dists_to_one(self.store, points, *q, self.kernel, self.exec, out);
    }

    fn dists_to_set_min(&self, points: &[PointId], center: &PointId, min_dist: &mut [f64]) {
        self.tally(points.len());
        batch::par_dists_to_set_min(
            self.store,
            points,
            *center,
            self.kernel,
            self.exec,
            min_dist,
        );
    }

    fn dists_to_centers_min(&self, points: &[PointId], centers: &[PointId], min_dist: &mut [f64]) {
        self.tally(points.len() * centers.len());
        batch::par_dists_to_centers_min(
            self.store,
            points,
            centers,
            self.kernel,
            self.exec,
            min_dist,
        );
    }

    fn nearest_each(&self, queries: &[PointId], centers: &[PointId], out: &mut [(usize, f64)]) {
        assert!(out.len() >= queries.len(), "output buffer too small");
        if queries.is_empty() {
            // The trait contract: empty queries are trivially done, even
            // with no centers (matching the default implementation).
            return;
        }
        self.tally(queries.len() * centers.len());
        batch::par_nearest_center_each(self.store, queries, centers, self.kernel, self.exec, out);
    }

    fn dists_to_set_min_weighted(
        &self,
        points: &[PointId],
        center: &PointId,
        weight: f64,
        min_dist: &mut [f64],
    ) {
        self.tally(points.len());
        batch::par_dists_to_set_min_weighted(
            self.store,
            points,
            *center,
            weight,
            self.kernel,
            self.exec,
            min_dist,
        );
    }

    fn nearest_weighted(
        &self,
        q: &PointId,
        centers: &[PointId],
        weights: &[f64],
    ) -> Option<(usize, f64)> {
        self.tally(centers.len());
        batch::par_nearest_center_weighted(self.store, centers, weights, *q, self.kernel, self.exec)
    }

    fn dists_to_centers_min_weighted(
        &self,
        points: &[PointId],
        centers: &[PointId],
        weights: &[f64],
        min_dist: &mut [f64],
    ) {
        self.tally(points.len() * centers.len());
        batch::par_dists_to_centers_min_weighted(
            self.store,
            points,
            centers,
            weights,
            self.kernel,
            self.exec,
            min_dist,
        );
    }

    fn nearest_each_weighted(
        &self,
        queries: &[PointId],
        centers: &[PointId],
        weights: &[f64],
        out: &mut [(usize, f64)],
    ) {
        assert!(out.len() >= queries.len(), "output buffer too small");
        if queries.is_empty() {
            return;
        }
        self.tally(queries.len() * centers.len());
        batch::par_nearest_center_each_weighted(
            self.store,
            queries,
            centers,
            weights,
            self.kernel,
            self.exec,
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Euclidean;

    fn cloud(seed: u64, n: usize, d: usize) -> Vec<Point> {
        let mut s = seed | 1;
        let mut rnd = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new((0..d).map(|_| rnd() * 20.0 - 10.0).collect()))
            .collect()
    }

    #[test]
    fn store_roundtrips_points() {
        let pts = cloud(1, 7, 3);
        let store = PointStore::from_points(&pts);
        assert_eq!(store.len(), 7);
        assert_eq!(store.dim(), 3);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(store.coords(PointId(i)), p.coords());
            assert_eq!(store.point(PointId(i)), *p);
        }
    }

    #[test]
    fn try_push_rejects_bad_input() {
        let mut store = PointStore::new(2);
        assert!(matches!(
            store.try_push(&[1.0]),
            Err(PointError::DimMismatch {
                got: 1,
                expected: 2
            })
        ));
        assert!(matches!(
            store.try_push(&[1.0, f64::NAN]),
            Err(PointError::NonFinite { index: 1, .. })
        ));
        assert!(store.try_push(&[1.0, 2.0]).is_ok());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn scalar_oracle_matches_euclidean_exactly() {
        let pts = cloud(3, 12, 5);
        let store = PointStore::from_points(&pts);
        let oracle = StoreOracle::new(&store, Kernel::Scalar);
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                let reference = Euclidean.dist(&pts[i], &pts[j]);
                let d = oracle.dist(&PointId(i), &PointId(j));
                assert_eq!(d.to_bits(), reference.to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn blocked_oracle_matches_within_tolerance() {
        for d in [1usize, 2, 3, 7, 8, 9, 16, 33] {
            let pts = cloud(d as u64 + 1, 9, d);
            let store = PointStore::from_points(&pts);
            let oracle = StoreOracle::new(&store, Kernel::Blocked);
            for i in 0..pts.len() {
                for j in 0..pts.len() {
                    let reference = Euclidean.dist(&pts[i], &pts[j]);
                    let got = oracle.dist(&PointId(i), &PointId(j));
                    assert!(
                        (got - reference).abs() <= 1e-9 * (1.0 + reference),
                        "d={d} ({i},{j}): {got} vs {reference}"
                    );
                }
            }
        }
    }

    #[test]
    fn blocked_distance_of_point_to_itself_is_exactly_zero() {
        let pts = cloud(9, 5, 13);
        let store = PointStore::from_points(&pts);
        let oracle = StoreOracle::new(&store, Kernel::Blocked);
        for i in 0..pts.len() {
            assert_eq!(oracle.dist(&PointId(i), &PointId(i)), 0.0);
        }
    }

    #[test]
    fn nearest_each_accepts_empty_queries_like_the_default() {
        let pts = cloud(2, 4, 2);
        let store = PointStore::from_points(&pts);
        let oracle = StoreOracle::new(&store, Kernel::Blocked);
        // Empty queries are trivially done, even with no centers — the
        // documented trait contract.
        oracle.nearest_each(&[], &[], &mut []);
        let mut out = [(0usize, 0.0f64); 2];
        oracle.nearest_each(
            &[PointId(0), PointId(1)],
            &[PointId(2), PointId(3)],
            &mut out,
        );
        assert!(out.iter().all(|&(i, d)| i < 2 && d.is_finite()));
    }

    #[test]
    fn truncate_drops_tail_rows_and_keeps_prefix_intact() {
        let pts = cloud(7, 5, 3);
        let mut store = PointStore::from_points(&pts);
        let before: Vec<Vec<f64>> = (0..3).map(|i| store.coords(PointId(i)).to_vec()).collect();
        store.truncate(3);
        assert_eq!(store.len(), 3);
        for (i, coords) in before.iter().enumerate() {
            assert_eq!(store.coords(PointId(i)), coords.as_slice());
        }
        // Re-pushing after a truncate reuses the freed rows.
        let id = store.push(pts[4].coords());
        assert_eq!(id, PointId(3));
        assert_eq!(store.coords(id), pts[4].coords());
        // Truncating past the end is a no-op.
        store.truncate(100);
        assert_eq!(store.len(), 4);
    }

    #[test]
    fn oracle_counts_every_pair_once_regardless_of_kernel() {
        let pts = cloud(5, 10, 4);
        let store = PointStore::from_points(&pts);
        let ids = store.ids();
        let mut counts = Vec::new();
        for kernel in Kernel::ALL {
            let counter = DistCounter::new();
            let oracle = StoreOracle::new(&store, kernel).with_counter(&counter);
            let mut out = vec![0.0; ids.len()];
            oracle.dists_to_one(&ids, &PointId(0), &mut out);
            oracle.dists_to_set_min(&ids, &PointId(3), &mut out);
            oracle.dists_to_centers_min(&ids, &ids[..3], &mut out);
            let mut nearest = vec![(0usize, 0.0f64); ids.len()];
            oracle.nearest_each(&ids, &ids[..2], &mut nearest);
            let _ = oracle.nearest(&PointId(2), &ids[..4]);
            let _ = oracle.dist(&PointId(0), &PointId(1));
            // Weighted sweeps count exactly like their plain siblings:
            // one evaluation per point-pair, kernel-independent.
            oracle.dists_to_set_min_weighted(&ids, &PointId(3), 0.5, &mut out);
            oracle.dists_to_centers_min_weighted(&ids, &ids[..3], &[0.1, 0.2, 0.3], &mut out);
            oracle.nearest_each_weighted(&ids, &ids[..2], &[0.1, 0.2], &mut nearest);
            let _ = oracle.nearest_weighted(&PointId(2), &ids[..4], &[0.0; 4]);
            counts.push(counter.count());
        }
        for c in &counts[1..] {
            assert_eq!(*c, counts[0]);
        }
        assert_eq!(counts[0], 10 + 10 + 30 + 20 + 4 + 1 + 10 + 30 + 20 + 4);
    }

    #[test]
    fn row_masks_preserve_order_and_tolerate_out_of_range() {
        let pts = cloud(11, 5, 2);
        let store = PointStore::from_points(&pts);
        assert_eq!(
            store.ids_excluding(PointId(2)),
            vec![PointId(0), PointId(1), PointId(3), PointId(4)]
        );
        assert_eq!(store.ids_excluding(PointId(99)), store.ids());
        let ids = vec![PointId(7), PointId(3), PointId(9)];
        assert_eq!(mask_row(&ids, 1), vec![PointId(7), PointId(9)]);
        assert_eq!(mask_row(&ids, 5), ids);
        assert!(mask_row(&[], 0).is_empty());
    }

    #[test]
    fn f32_mirror_is_idempotent_and_survives_truncate() {
        let pts = cloud(9, 6, 3);
        let mut store = PointStore::from_points(&pts);
        assert!(!store.has_f32());
        store.try_enable_f32().unwrap();
        store.try_enable_f32().unwrap(); // idempotent
        assert!(store.has_f32());
        for i in 0..store.len() {
            let id = PointId(i);
            for (c64, c32) in store.coords(id).iter().zip(store.coords_f32(id)) {
                assert_eq!(*c32, *c64 as f32);
            }
            // The mirror's norm is the sequential-order dot of the
            // *rounded* row, accumulated in f64.
            let norm: f64 = store
                .coords_f32(id)
                .iter()
                .map(|&c| f64::from(c) * f64::from(c))
                .sum();
            assert_eq!(store.norm_sq_f32(id).to_bits(), norm.to_bits());
        }
        // Pushes after enabling keep the mirror in lockstep...
        let id = store.try_push(&[1.5, -2.5, 3.5]).unwrap();
        assert_eq!(store.coords_f32(id), &[1.5f32, -2.5, 3.5]);
        // ...and truncate shrinks both representations together.
        store.truncate(4);
        assert_eq!(store.len(), 4);
        let (coords32, norms32) = store.f32_view().unwrap();
        assert_eq!(coords32.len(), 4 * 3);
        assert_eq!(norms32.len(), 4);
    }

    #[test]
    fn f32_mirror_rejects_overflowing_coordinates() {
        // 1e39 is finite in f64 but rounds to +∞ in f32.
        let mut store = PointStore::new(2);
        store.try_push(&[1.0, 1e39]).unwrap();
        assert!(matches!(
            store.try_enable_f32(),
            Err(PointError::F32Overflow { index: 1, .. })
        ));
        // A failed enable leaves the store fully usable in f64.
        assert!(!store.has_f32());
        assert_eq!(store.len(), 1);

        // With the mirror live, an overflowing push is rejected whole:
        // neither representation grows.
        let mut store = PointStore::new(2);
        store.try_push(&[0.0, 0.0]).unwrap();
        store.try_enable_f32().unwrap();
        assert!(matches!(
            store.try_push(&[1e39, 0.0]),
            Err(PointError::F32Overflow { index: 0, .. })
        ));
        assert_eq!(store.len(), 1);
        assert_eq!(store.f32_view().unwrap().0.len(), 2);
    }
}
