//! `L_p` metrics over [`Point`].

use crate::{Metric, Point};

/// The Euclidean (`L₂`) metric on `ℝ^d`.
///
/// This is the metric of the paper's Euclidean theorems (2.1, 2.2, 2.4,
/// 2.5); the expected-point construction `P̄` relies on the convexity of this
/// norm (paper Lemma 3.1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Euclidean;

impl Metric<Point> for Euclidean {
    #[inline]
    fn dist(&self, a: &Point, b: &Point) -> f64 {
        a.dist(b)
    }
}

/// The Manhattan (`L₁`) metric on `ℝ^d`.
///
/// `L₁` is a norm, so Lemma 3.1 (and hence the expected-point machinery)
/// also holds for it; we use it in tests as a second normed space.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Manhattan;

impl Metric<Point> for Manhattan {
    fn dist(&self, a: &Point, b: &Point) -> f64 {
        assert_eq!(a.dim(), b.dim(), "dimension mismatch");
        a.coords()
            .iter()
            .zip(b.coords().iter())
            .map(|(x, y)| (x - y).abs())
            .sum()
    }
}

/// The Chebyshev (`L∞`) metric on `ℝ^d`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Chebyshev;

impl Metric<Point> for Chebyshev {
    fn dist(&self, a: &Point, b: &Point) -> f64 {
        assert_eq!(a.dim(), b.dim(), "dimension mismatch");
        a.coords()
            .iter()
            .zip(b.coords().iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }
}

/// The Minkowski (`L_p`) metric on `ℝ^d` for `p ≥ 1`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Minkowski {
    p: f64,
}

impl Minkowski {
    /// Creates the `L_p` metric.
    ///
    /// # Panics
    /// Panics if `p < 1` (the triangle inequality fails for `p < 1`).
    pub fn new(p: f64) -> Self {
        assert!(p >= 1.0, "Minkowski metric requires p >= 1, got {p}");
        Self { p }
    }

    /// The exponent `p`.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Metric<Point> for Minkowski {
    fn dist(&self, a: &Point, b: &Point) -> f64 {
        assert_eq!(a.dim(), b.dim(), "dimension mismatch");
        a.coords()
            .iter()
            .zip(b.coords().iter())
            .map(|(x, y)| (x - y).abs().powf(self.p))
            .sum::<f64>()
            .powf(1.0 / self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> (Point, Point) {
        (Point::new(vec![1.0, 2.0]), Point::new(vec![4.0, -2.0]))
    }

    #[test]
    fn euclidean() {
        let (a, b) = pts();
        assert!((Euclidean.dist(&a, &b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn manhattan() {
        let (a, b) = pts();
        assert!((Manhattan.dist(&a, &b) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn chebyshev() {
        let (a, b) = pts();
        assert!((Chebyshev.dist(&a, &b) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn minkowski_interpolates() {
        let (a, b) = pts();
        let l1 = Minkowski::new(1.0).dist(&a, &b);
        let l2 = Minkowski::new(2.0).dist(&a, &b);
        assert!((l1 - Manhattan.dist(&a, &b)).abs() < 1e-12);
        assert!((l2 - Euclidean.dist(&a, &b)).abs() < 1e-12);
        // L_p distance is non-increasing in p.
        let l3 = Minkowski::new(3.0).dist(&a, &b);
        assert!(l3 <= l2 && l2 <= l1);
        // And lower-bounded by L∞.
        assert!(l3 >= Chebyshev.dist(&a, &b) - 1e-12);
    }

    #[test]
    #[should_panic(expected = "p >= 1")]
    fn minkowski_rejects_p_below_one() {
        let _ = Minkowski::new(0.5);
    }

    #[test]
    fn identity_of_indiscernibles() {
        let (a, _) = pts();
        assert_eq!(Euclidean.dist(&a, &a), 0.0);
        assert_eq!(Manhattan.dist(&a, &a), 0.0);
        assert_eq!(Chebyshev.dist(&a, &a), 0.0);
        assert_eq!(Minkowski::new(2.5).dist(&a, &a), 0.0);
    }
}
