//! Batched Euclidean distance kernels over a [`PointStore`].
//!
//! Three interchangeable kernels compute every routine:
//!
//! * [`Kernel::Scalar`] — per-pair difference-and-square with sequential
//!   summation, the exact arithmetic of [`crate::Point::dist`]. Results
//!   are bit-identical to the pointwise [`crate::Euclidean`] metric; this
//!   is the reference path the golden-equivalence suites pin against.
//! * [`Kernel::Blocked`] — the `‖a−b‖² = ‖a‖² + ‖b‖² − 2a·b` form over
//!   8-wide unrolled dot products, using the store's cached squared
//!   norms. Faster (independent accumulators expose instruction-level
//!   parallelism and vectorize), but the different f64 summation order
//!   perturbs results by a few ulps; callers needing bit-stability pick
//!   `Scalar`.
//! * [`Kernel::Tiled`] — the same norm factorization restructured as a
//!   register-tiled mini-GEMM (see [`tile`]): multi-center sweeps
//!   ([`dists_to_centers_min`], [`nearest_center_each`]) pack
//!   [`tile::TILE_CENTERS`] centers into a column-major panel that stays
//!   in L1 and stream each point row past it exactly once,
//!   [`tile::TILE_POINTS`] rows per block, with the d-loop as the only
//!   real loop around a fully unrolled 4×4 block of
//!   `[f64; TILE_CENTERS]` lane accumulators the autovectorizer keeps in
//!   vector registers. When the store carries the opt-in f32 mirror
//!   ([`PointStore::try_enable_f32`]), the tiled kernel streams the
//!   half-width coordinates and widens each element to f64 before any
//!   arithmetic, halving memory traffic in bandwidth-bound regimes while
//!   keeping f64 accumulation tolerances.
//!
//! Every tiled dot product — single pair, single-center sweep, or panel
//! block — accumulates in one canonical order (ascending dimension, one
//! f64 accumulator per pair: [`tile::dot_seq`]), and the store caches
//! norms accumulated in that same order, so `‖a‖² + ‖b‖² − 2a·b` cancels
//! exactly for duplicate points and a tiled value is a pure function of
//! the stored coordinates: block membership, chunk boundaries, and lane
//! counts never perturb a result bit.
//!
//! The factorized kernels lose to the scalar loop on tiny sweeps (the
//! norm lookups and reduction trees cost more than they save), so the
//! public entry points re-dispatch through [`Kernel::dispatch`]: below a
//! measured work cutoff `Blocked` and `Tiled` fall back to the scalar
//! loop. The decision depends only on the sweep size and dimension —
//! never on thread count or chunking — so it preserves the
//! execution-layer determinism contract.
//!
//! All kernels perform — and [`DistCounter`]-instrumented callers count —
//! exactly one distance evaluation per point-pair, so switching kernels
//! never changes instrumentation.

use crate::store::{PointId, PointStore};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use ukc_pool::Exec;

/// Rows per parallel chunk. A pure constant — chunk boundaries must
/// depend only on the input size, never on the worker count, so the
/// ordered chunk reductions below are bit-identical for every lane count
/// (the execution-layer determinism contract).
pub const PAR_CHUNK: usize = 2048;

/// Minimum row count before a sweep is worth handing to the pool (below
/// this, chunk-dispatch overhead exceeds the sweep itself). Also a pure
/// function of input size, for the same determinism reason.
pub const PAR_MIN_POINTS: usize = 4096;

/// Below this dimension the norm factorization never pays: the cached
/// norm lookups and reduction machinery cost more than the one or two
/// multiplies they save (BENCH_kernel.json `d = 2` rows lose at every
/// `n`), so [`Kernel::dispatch`] demotes factorized kernels to scalar.
pub const FACTORIZED_MIN_DIM: usize = 3;

/// Minimum `pair_evals · dim` (total multiply-add work) before a
/// factorized kernel beats the scalar loop (measured: blocked loses at
/// `n = 1k, d = 8` — 8k work — and wins from `n = 1k, d = 32` — 32k).
pub const FACTORIZED_MIN_WORK: usize = 16_384;

/// Which distance kernel evaluates batched routines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Per-pair difference-and-square, sequential summation over
    /// dimensions: bit-identical to [`crate::Point::dist`].
    Scalar,
    /// Norm-factorized form over 8-wide unrolled dot products; fast,
    /// with last-ulp deviations from the scalar path.
    #[default]
    Blocked,
    /// Register-tiled mini-GEMM over packed center panels (see [`tile`]);
    /// the fastest multi-center sweeps, and the only kernel that reads
    /// the store's opt-in f32 mirror. Same tolerance contract as
    /// `Blocked`.
    Tiled,
}

impl Kernel {
    /// Every kernel, in definition order — for CLI/test matrices.
    pub const ALL: [Kernel; 3] = [Kernel::Scalar, Kernel::Blocked, Kernel::Tiled];

    /// Short name for reports and config keys.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Blocked => "blocked",
            Kernel::Tiled => "tiled",
        }
    }

    /// Parses a [`Kernel::name`] back to the kernel (`None` for anything
    /// else) — the single source of truth for CLI and API kernel fields.
    pub fn parse(s: &str) -> Option<Kernel> {
        Kernel::ALL.into_iter().find(|k| k.name() == s)
    }

    /// The kernel a sweep of `pair_evals` point-pairs in dimension `dim`
    /// should actually run: factorized kernels fall back to the scalar
    /// loop below [`FACTORIZED_MIN_DIM`] / [`FACTORIZED_MIN_WORK`], where
    /// BENCH_kernel.json shows them *losing* to it.
    ///
    /// The decision is a pure function of the sweep size and dimension —
    /// never of thread count or chunk boundaries — and the batched entry
    /// points apply it exactly once per sweep, on the full sweep size, so
    /// it preserves the execution-layer determinism contract.
    #[inline]
    pub fn dispatch(self, pair_evals: usize, dim: usize) -> Kernel {
        if dim < FACTORIZED_MIN_DIM || pair_evals.saturating_mul(dim) < FACTORIZED_MIN_WORK {
            Kernel::Scalar
        } else {
            self
        }
    }
}

/// How many cache-line-padded cells a [`DistCounter`] spreads its adds
/// over.
const COUNTER_SHARDS: usize = 8;

/// One counter cell on its own cache line, so concurrent adds from
/// different lanes do not false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
struct CounterCell(AtomicU64);

/// Monotone shard-id source for [`thread_shard`].
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's counter shard, assigned round-robin on first use.
    static THREAD_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The calling thread's shard index (stable for the thread's lifetime).
fn thread_shard() -> usize {
    THREAD_SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
        s.set(v);
        v
    })
}

/// A shared, *sharded* distance-evaluation counter.
///
/// The kernels' callers bump it by the number of point-pairs evaluated;
/// `ukc-core` threads one through every solve so [`Kernel::Scalar`] and
/// [`Kernel::Blocked`] report identical `distance_evals`. Internally the
/// count is spread over cache-line-padded cells indexed by a per-thread
/// shard, so the parallel sweeps (and per-pair counting from many pool
/// lanes at once) never contend on one cache line; [`DistCounter::count`]
/// sums the cells, so per-stage totals stay **exact** — sharding changes
/// where an add lands, never whether it is counted.
#[derive(Debug)]
pub struct DistCounter {
    cells: [CounterCell; COUNTER_SHARDS],
}

impl Default for DistCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl DistCounter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Self {
            cells: std::array::from_fn(|_| CounterCell::default()),
        }
    }

    /// Adds `n` evaluations (to the calling thread's shard).
    #[inline]
    pub fn add(&self, n: u64) {
        self.cells[thread_shard()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// The evaluations so far (sum over all shards).
    pub fn count(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }

    /// Evaluations since a previous [`DistCounter::count`].
    pub fn since(&self, since: u64) -> u64 {
        self.count().saturating_sub(since)
    }
}

/// Squared distance by sequential difference-and-square — the exact
/// arithmetic of [`crate::Point::dist_sq`].
///
/// # Panics
/// Debug-asserts equal lengths; release builds truncate to the shorter.
#[inline]
pub fn dist_sq_scalar(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// One 8-lane block: products summed by the fixed reduction tree.
#[inline(always)]
fn dot8(xs: &[f64; 8], ys: &[f64; 8]) -> f64 {
    ((xs[0] * ys[0] + xs[4] * ys[4]) + (xs[1] * ys[1] + xs[5] * ys[5]))
        + ((xs[2] * ys[2] + xs[6] * ys[6]) + (xs[3] * ys[3] + xs[7] * ys[7]))
}

/// Dot product with eight independent accumulators (8-wide unroll).
///
/// The independent partial sums break the sequential-add dependency
/// chain, which is what lets the compiler vectorize and the CPU overlap
/// the multiply-adds.
#[inline]
pub fn dot_blocked(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    // The d == 8 case (one exact block) is the kernel-comparison sweet
    // spot; dispatching to the fixed-size form skips all iterator and
    // remainder machinery. The summation tree is identical to the general
    // path's, so both produce the same value for the same input.
    if let (Ok(xs), Ok(ys)) = (<&[f64; 8]>::try_from(a), <&[f64; 8]>::try_from(b)) {
        return dot8(xs, ys);
    }
    let n = a.len().min(b.len());
    let mut ca = a[..n].chunks_exact(8);
    let mut cb = b[..n].chunks_exact(8);
    let mut acc = [0.0f64; 8];
    for (xs, ys) in (&mut ca).zip(&mut cb) {
        // Fixed-size views let the compiler drop every bounds check and
        // keep the 8 lanes in vector registers.
        let xs: &[f64; 8] = xs.try_into().expect("chunks_exact(8)");
        let ys: &[f64; 8] = ys.try_into().expect("chunks_exact(8)");
        for lane in 0..8 {
            acc[lane] += xs[lane] * ys[lane];
        }
    }
    let mut tail = 0.0;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    (((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]))) + tail
}

/// Squared distance via `‖a‖² + ‖b‖² − 2a·b` with precomputed norms,
/// clamped at zero (cancellation can produce a tiny negative).
#[inline]
pub fn dist_sq_blocked(a: &[f64], a_norm_sq: f64, b: &[f64], b_norm_sq: f64) -> f64 {
    ((a_norm_sq + b_norm_sq) - 2.0 * dot_blocked(a, b)).max(0.0)
}

/// Register-tiled mini-GEMM primitives behind [`Kernel::Tiled`].
///
/// The multi-center sweeps are structured like a BLAS micro-kernel:
/// center coordinates are packed column-major into
/// [`TILE_CENTERS`](tile::TILE_CENTERS)-wide panels
/// ([`CenterPanels`](tile::CenterPanels)) that stay resident in L1, and
/// point rows stream past them [`TILE_POINTS`](tile::TILE_POINTS) at a
/// time. Inside a block the d-loop
/// is the only real loop; the `TILE_POINTS × TILE_CENTERS` multiply-add
/// block is fully unrolled over `[f64; TILE_CENTERS]` accumulator arrays,
/// which the autovectorizer keeps in vector registers (4 f64 lanes fill
/// one ymm register under the workspace's `x86-64-v3` baseline).
///
/// **Determinism contract.** Every per-pair dot product in this module —
/// [`dot_seq`](tile::dot_seq), each row of
/// [`dots_x4_one`](tile::dots_x4_one), and each `(row, center)` cell of
/// [`dots_x4_panel`](tile::dots_x4_panel) /
/// [`dot_panel`](tile::dot_panel) — performs the identical
/// floating-point operation sequence: one f64 accumulator, ascending
/// dimension, `acc + x·y` per step. [`PointStore`]
/// caches squared norms accumulated in the same order, so the
/// `‖a‖² + ‖b‖² − 2a·b` form cancels **exactly** for duplicate points,
/// and a tiled distance is a pure function of the stored coordinates —
/// independent of block membership, panel shape, chunking, and thread
/// count. SIMD parallelism lives across the *center* axis (independent
/// accumulators), never inside a single pair's reduction.
///
/// **f32 storage.** The primitives are generic over
/// [`Coord`](tile::Coord): elements
/// are widened to f64 *before* any arithmetic, so enabling the store's
/// f32 mirror halves memory traffic but keeps f64 accumulation — the
/// only precision loss is the one-time coordinate rounding at ingest.
pub mod tile {
    /// Point rows processed together per block (interleaved for
    /// instruction-level parallelism).
    pub const TILE_POINTS: usize = 4;

    /// Centers packed per panel — the SIMD lane width of the
    /// `[f64; TILE_CENTERS]` accumulator arrays.
    pub const TILE_CENTERS: usize = 4;

    /// A coordinate element the tiled kernel can stream (f64, or the
    /// store's opt-in f32 mirror); widened to f64 before any arithmetic.
    pub trait Coord: Copy + Send + Sync + 'static {
        /// The element as f64 (exact — both storage types embed in f64).
        fn widen(self) -> f64;
    }

    impl Coord for f64 {
        #[inline(always)]
        fn widen(self) -> f64 {
            self
        }
    }

    impl Coord for f32 {
        #[inline(always)]
        fn widen(self) -> f64 {
            f64::from(self)
        }
    }

    /// The canonical tiled dot product: one f64 accumulator, ascending
    /// dimension. Every tiled code path reproduces exactly this operation
    /// sequence per pair (see the module docs), which is what makes tiled
    /// values blocking-independent and self-cancelling for duplicates.
    #[inline]
    pub fn dot_seq<A: Coord, B: Coord>(a: &[A], b: &[B]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
        a.iter()
            .zip(b.iter())
            .map(|(&x, &y)| x.widen() * y.widen())
            .sum()
    }

    /// Dots of four point rows against one query row, interleaved for
    /// ILP; each row's accumulation order is exactly [`dot_seq`].
    ///
    /// # Panics
    /// Panics when any row is shorter than `q`.
    #[inline]
    pub fn dots_x4_one<T: Coord, Q: Coord>(
        rows: [&[T]; TILE_POINTS],
        q: &[Q],
    ) -> [f64; TILE_POINTS] {
        let d = q.len();
        let [r0, r1, r2, r3] = rows;
        assert!(
            r0.len() >= d && r1.len() >= d && r2.len() >= d && r3.len() >= d,
            "row shorter than query"
        );
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for (t, &qt) in q.iter().enumerate() {
            let qt = qt.widen();
            a0 += r0[t].widen() * qt;
            a1 += r1[t].widen() * qt;
            a2 += r2[t].widen() * qt;
            a3 += r3[t].widen() * qt;
        }
        [a0, a1, a2, a3]
    }

    /// Centers packed for the tiled sweeps: coordinates laid out
    /// column-major per panel — `coords[(g·d + t)·TILE_CENTERS + c]` is
    /// coordinate `t` of panel-local center `c` of panel `g` — with slots
    /// past the real center count padded by zero coordinates and `+∞`
    /// norms, so a padded column can never win a minimum.
    #[derive(Clone, Debug)]
    pub struct CenterPanels {
        coords: Vec<f64>,
        norms_sq: Vec<f64>,
        dim: usize,
        len: usize,
    }

    impl CenterPanels {
        /// Packs `len` centers of dimension `dim`; `coord(c, t)` and
        /// `norm_sq(c)` supply the (already widened) values.
        pub fn pack(
            len: usize,
            dim: usize,
            coord: impl Fn(usize, usize) -> f64,
            norm_sq: impl Fn(usize) -> f64,
        ) -> Self {
            let padded = len.div_ceil(TILE_CENTERS).max(1) * TILE_CENTERS;
            let mut coords = vec![0.0; padded * dim];
            let mut norms = vec![f64::INFINITY; padded];
            for (c, norm) in norms.iter_mut().enumerate().take(len) {
                let (g, j) = (c / TILE_CENTERS, c % TILE_CENTERS);
                for t in 0..dim {
                    coords[(g * dim + t) * TILE_CENTERS + j] = coord(c, t);
                }
                *norm = norm_sq(c);
            }
            Self {
                coords,
                norms_sq: norms,
                dim,
                len,
            }
        }

        /// Number of real (unpadded) centers.
        pub fn len(&self) -> usize {
            self.len
        }

        /// `true` when no centers are packed.
        pub fn is_empty(&self) -> bool {
            self.len == 0
        }

        /// Number of [`TILE_CENTERS`]-wide panels, including the padded
        /// tail.
        pub fn n_panels(&self) -> usize {
            self.norms_sq.len() / TILE_CENTERS
        }

        /// The column-major coordinate block of panel `g`
        /// (`dim · TILE_CENTERS` values).
        #[inline]
        pub fn panel_coords(&self, g: usize) -> &[f64] {
            &self.coords[g * self.dim * TILE_CENTERS..(g + 1) * self.dim * TILE_CENTERS]
        }

        /// The (possibly `+∞`-padded) squared norms of panel `g`.
        #[inline]
        pub fn panel_norms_sq(&self, g: usize) -> &[f64; TILE_CENTERS] {
            self.norms_sq[g * TILE_CENTERS..(g + 1) * TILE_CENTERS]
                .try_into()
                .expect("panel width")
        }
    }

    /// The 4×4 micro-kernel: dots of four point rows against one packed
    /// panel. The d-loop is the only real loop — the 4×4 multiply-add
    /// block is fully unrolled around `[f64; TILE_CENTERS]` lane
    /// accumulators. Per-pair accumulation order is exactly [`dot_seq`].
    ///
    /// # Panics
    /// Panics when any row is shorter than the panel's dimension.
    #[inline]
    pub fn dots_x4_panel<T: Coord>(
        rows: [&[T]; TILE_POINTS],
        panel: &[f64],
    ) -> [[f64; TILE_CENTERS]; TILE_POINTS] {
        let d = panel.len() / TILE_CENTERS;
        let [r0, r1, r2, r3] = rows;
        assert!(
            r0.len() >= d && r1.len() >= d && r2.len() >= d && r3.len() >= d,
            "row shorter than panel dimension"
        );
        let mut acc = [[0.0f64; TILE_CENTERS]; TILE_POINTS];
        for t in 0..d {
            let cv: &[f64; TILE_CENTERS] = panel[t * TILE_CENTERS..(t + 1) * TILE_CENTERS]
                .try_into()
                .expect("panel stride");
            let xs = [r0[t].widen(), r1[t].widen(), r2[t].widen(), r3[t].widen()];
            for p in 0..TILE_POINTS {
                for c in 0..TILE_CENTERS {
                    acc[p][c] += xs[p] * cv[c];
                }
            }
        }
        acc
    }

    /// Single-row form of [`dots_x4_panel`] for the block remainder —
    /// identical per-pair accumulation order.
    ///
    /// # Panics
    /// Panics when `row` is shorter than the panel's dimension.
    #[inline]
    pub fn dot_panel<T: Coord>(row: &[T], panel: &[f64]) -> [f64; TILE_CENTERS] {
        let d = panel.len() / TILE_CENTERS;
        assert!(row.len() >= d, "row shorter than panel dimension");
        let mut acc = [0.0f64; TILE_CENTERS];
        for t in 0..d {
            let cv: &[f64; TILE_CENTERS] = panel[t * TILE_CENTERS..(t + 1) * TILE_CENTERS]
                .try_into()
                .expect("panel stride");
            let x = row[t].widen();
            for c in 0..TILE_CENTERS {
                acc[c] += x * cv[c];
            }
        }
        acc
    }
}

/// A typed view of the storage the tiled kernel streams: the f32 mirror
/// when the store carries one, else the f64 coordinates — in both cases
/// paired with squared norms accumulated in [`tile::dot_seq`] order.
struct TiledView<'a, T> {
    coords: &'a [T],
    norms_sq: &'a [f64],
    dim: usize,
}

impl<'a, T: tile::Coord> TiledView<'a, T> {
    #[inline]
    fn row(&self, id: PointId) -> &'a [T] {
        &self.coords[id.0 * self.dim..(id.0 + 1) * self.dim]
    }

    #[inline]
    fn norm_sq(&self, id: PointId) -> f64 {
        self.norms_sq[id.0]
    }
}

fn tiled_view_f64(store: &PointStore) -> TiledView<'_, f64> {
    TiledView {
        coords: store.raw_coords(),
        norms_sq: store.raw_norms_sq_seq(),
        dim: store.dim(),
    }
}

fn tiled_view_f32(store: &PointStore) -> Option<TiledView<'_, f32>> {
    store.f32_view().map(|(coords, norms_sq)| TiledView {
        coords,
        norms_sq,
        dim: store.dim(),
    })
}

/// Packs `centers` into [`tile::CenterPanels`], widening coordinates and
/// reading the view's (order-matched) norms.
fn pack_panels<T: tile::Coord>(v: &TiledView<'_, T>, centers: &[PointId]) -> tile::CenterPanels {
    tile::CenterPanels::pack(
        centers.len(),
        v.dim,
        |c, t| v.row(centers[c])[t].widen(),
        |c| v.norm_sq(centers[c]),
    )
}

/// Distance between two stored points under `kernel`'s arithmetic — the
/// single-pair form behind [`crate::Metric::dist`] on a
/// [`crate::StoreOracle`]. The tiled kernel reads the f32 mirror when the
/// store carries one. Sweep dispatch ([`Kernel::dispatch`]) does not
/// apply to single pairs — callers asked for this kernel's arithmetic.
pub fn pair_dist(store: &PointStore, a: PointId, b: PointId, kernel: Kernel) -> f64 {
    match kernel {
        Kernel::Scalar => dist_sq_scalar(store.coords(a), store.coords(b)).sqrt(),
        Kernel::Blocked => dist_sq_blocked(
            store.coords(a),
            store.norm_sq(a),
            store.coords(b),
            store.norm_sq(b),
        )
        .sqrt(),
        Kernel::Tiled => {
            if let Some(v) = tiled_view_f32(store) {
                pair_dist_tiled(&v, a, b)
            } else {
                pair_dist_tiled(&tiled_view_f64(store), a, b)
            }
        }
    }
}

#[inline]
fn pair_dist_tiled<T: tile::Coord>(v: &TiledView<'_, T>, a: PointId, b: PointId) -> f64 {
    ((v.norm_sq(a) + v.norm_sq(b)) - 2.0 * tile::dot_seq(v.row(a), v.row(b)))
        .max(0.0)
        .sqrt()
}

/// Fills `out[i] = d(points[i], q)`.
///
/// Re-dispatches through [`Kernel::dispatch`] on the sweep size, so tiny
/// sweeps run the scalar loop even under a factorized kernel.
///
/// # Panics
/// Panics when `out` is shorter than `points`.
pub fn dists_to_one(
    store: &PointStore,
    points: &[PointId],
    q: PointId,
    kernel: Kernel,
    out: &mut [f64],
) {
    assert!(out.len() >= points.len(), "output buffer too small");
    dists_to_one_resolved(
        store,
        points,
        q,
        kernel.dispatch(points.len(), store.dim()),
        out,
    );
}

/// [`dists_to_one`] after dispatch: `kernel` is run as-is. The parallel
/// entry resolves once on the full sweep and calls this per chunk, so
/// chunk sizes can never flip the dispatch decision.
fn dists_to_one_resolved(
    store: &PointStore,
    points: &[PointId],
    q: PointId,
    kernel: Kernel,
    out: &mut [f64],
) {
    match kernel {
        Kernel::Scalar => {
            let qc = store.coords(q);
            for (p, o) in points.iter().zip(out.iter_mut()) {
                *o = dist_sq_scalar(store.coords(*p), qc).sqrt();
            }
        }
        Kernel::Blocked => {
            let qc = store.coords(q);
            let qn = store.norm_sq(q);
            for (p, o) in points.iter().zip(out.iter_mut()) {
                *o = dist_sq_blocked(store.coords(*p), store.norm_sq(*p), qc, qn).sqrt();
            }
        }
        Kernel::Tiled => {
            if let Some(v) = tiled_view_f32(store) {
                dists_to_one_tiled(&v, points, q, out);
            } else {
                dists_to_one_tiled(&tiled_view_f64(store), points, q, out);
            }
        }
    }
}

fn dists_to_one_tiled<T: tile::Coord>(
    v: &TiledView<'_, T>,
    points: &[PointId],
    q: PointId,
    out: &mut [f64],
) {
    let qr = v.row(q);
    let qn = v.norm_sq(q);
    let mut blocks = points.chunks_exact(tile::TILE_POINTS);
    let mut i = 0;
    for blk in &mut blocks {
        let rows = [v.row(blk[0]), v.row(blk[1]), v.row(blk[2]), v.row(blk[3])];
        let dots = tile::dots_x4_one(rows, qr);
        for p in 0..tile::TILE_POINTS {
            out[i + p] = ((v.norm_sq(blk[p]) + qn) - 2.0 * dots[p]).max(0.0).sqrt();
        }
        i += tile::TILE_POINTS;
    }
    for &id in blocks.remainder() {
        let dot = tile::dot_seq(v.row(id), qr);
        out[i] = ((v.norm_sq(id) + qn) - 2.0 * dot).max(0.0).sqrt();
        i += 1;
    }
}

/// Tightens a running minimum-distance array against a new center:
/// `min_dist[i] = min(min_dist[i], d(points[i], center))` — the exact
/// inner loop of Gonzalez's farthest-point sweep.
///
/// # Panics
/// Panics when `min_dist` is shorter than `points`.
pub fn dists_to_set_min(
    store: &PointStore,
    points: &[PointId],
    center: PointId,
    kernel: Kernel,
    min_dist: &mut [f64],
) {
    assert!(min_dist.len() >= points.len(), "min-dist buffer too small");
    dists_to_set_min_resolved(
        store,
        points,
        center,
        kernel.dispatch(points.len(), store.dim()),
        min_dist,
    );
}

/// [`dists_to_set_min`] after dispatch (see [`dists_to_one_resolved`]).
fn dists_to_set_min_resolved(
    store: &PointStore,
    points: &[PointId],
    center: PointId,
    kernel: Kernel,
    min_dist: &mut [f64],
) {
    match kernel {
        Kernel::Scalar => {
            let cc = store.coords(center);
            for (p, d) in points.iter().zip(min_dist.iter_mut()) {
                let nd = dist_sq_scalar(store.coords(*p), cc).sqrt();
                if nd < *d {
                    *d = nd;
                }
            }
        }
        Kernel::Blocked => {
            // Compare in squared space and take the square root only on an
            // actual improvement: in a min-update sweep most pairs do not
            // tighten the minimum, so most `sqrt`s are skipped. (sqrt is
            // monotone, so the comparison is equivalent up to rounding —
            // within the blocked kernel's tolerance contract.)
            let cc = store.coords(center);
            let cn = store.norm_sq(center);
            for (p, d) in points.iter().zip(min_dist.iter_mut()) {
                let nd_sq = dist_sq_blocked(store.coords(*p), store.norm_sq(*p), cc, cn);
                if nd_sq < *d * *d {
                    *d = nd_sq.sqrt();
                }
            }
        }
        Kernel::Tiled => {
            if let Some(v) = tiled_view_f32(store) {
                dists_to_set_min_tiled(&v, points, center, min_dist);
            } else {
                dists_to_set_min_tiled(&tiled_view_f64(store), points, center, min_dist);
            }
        }
    }
}

fn dists_to_set_min_tiled<T: tile::Coord>(
    v: &TiledView<'_, T>,
    points: &[PointId],
    center: PointId,
    min_dist: &mut [f64],
) {
    let cc = v.row(center);
    let cn = v.norm_sq(center);
    let mut blocks = points.chunks_exact(tile::TILE_POINTS);
    let mut i = 0;
    for blk in &mut blocks {
        let rows = [v.row(blk[0]), v.row(blk[1]), v.row(blk[2]), v.row(blk[3])];
        let dots = tile::dots_x4_one(rows, cc);
        for p in 0..tile::TILE_POINTS {
            let nd_sq = ((v.norm_sq(blk[p]) + cn) - 2.0 * dots[p]).max(0.0);
            let d = &mut min_dist[i + p];
            if nd_sq < *d * *d {
                *d = nd_sq.sqrt();
            }
        }
        i += tile::TILE_POINTS;
    }
    for &id in blocks.remainder() {
        let nd_sq = ((v.norm_sq(id) + cn) - 2.0 * tile::dot_seq(v.row(id), cc)).max(0.0);
        let d = &mut min_dist[i];
        if nd_sq < *d * *d {
            *d = nd_sq.sqrt();
        }
        i += 1;
    }
}

/// Index (into `centers`) and distance of the center nearest to `q`,
/// ties broken toward the lower index; `None` for an empty center set.
pub fn nearest_center(
    store: &PointStore,
    centers: &[PointId],
    q: PointId,
    kernel: Kernel,
) -> Option<(usize, f64)> {
    nearest_center_resolved(
        store,
        centers,
        q,
        kernel.dispatch(centers.len(), store.dim()),
    )
}

/// [`nearest_center`] after dispatch (see [`dists_to_one_resolved`]).
fn nearest_center_resolved(
    store: &PointStore,
    centers: &[PointId],
    q: PointId,
    kernel: Kernel,
) -> Option<(usize, f64)> {
    match kernel {
        Kernel::Scalar => {
            let qc = store.coords(q);
            let mut best: Option<(usize, f64)> = None;
            for (i, c) in centers.iter().enumerate() {
                let d = dist_sq_scalar(store.coords(*c), qc).sqrt();
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((i, d));
                }
            }
            best
        }
        Kernel::Blocked => {
            // Squared-space argmin, one sqrt at the end.
            let qc = store.coords(q);
            let qn = store.norm_sq(q);
            let mut best: Option<(usize, f64)> = None;
            for (i, c) in centers.iter().enumerate() {
                let d_sq = dist_sq_blocked(store.coords(*c), store.norm_sq(*c), qc, qn);
                if best.is_none_or(|(_, bd)| d_sq < bd) {
                    best = Some((i, d_sq));
                }
            }
            best.map(|(i, d_sq)| (i, d_sq.sqrt()))
        }
        Kernel::Tiled => {
            if let Some(v) = tiled_view_f32(store) {
                nearest_center_tiled(&v, centers, q)
            } else {
                nearest_center_tiled(&tiled_view_f64(store), centers, q)
            }
        }
    }
}

/// Squared-space argmin over the centers with the canonical per-pair dot;
/// bitwise-identical distances (and thus the same argmin) as the fused
/// [`nearest_center_each`] panel path.
fn nearest_center_tiled<T: tile::Coord>(
    v: &TiledView<'_, T>,
    centers: &[PointId],
    q: PointId,
) -> Option<(usize, f64)> {
    let qr = v.row(q);
    let qn = v.norm_sq(q);
    let mut best: Option<(usize, f64)> = None;
    for (i, c) in centers.iter().enumerate() {
        let d_sq = ((v.norm_sq(*c) + qn) - 2.0 * tile::dot_seq(v.row(*c), qr)).max(0.0);
        if best.is_none_or(|(_, bd)| d_sq < bd) {
            best = Some((i, d_sq));
        }
    }
    best.map(|(i, d_sq)| (i, d_sq.sqrt()))
}

/// Parallel [`dists_to_one`]: splits `points` into [`PAR_CHUNK`]-row
/// blocks and fills each block's output slice on a pool lane. The fill
/// is elementwise (every `out[i]` depends only on pair `i`), so the
/// result is bit-identical to the sequential kernel for every [`Exec`].
///
/// # Panics
/// Panics when `out` is shorter than `points`.
pub fn par_dists_to_one(
    store: &PointStore,
    points: &[PointId],
    q: PointId,
    kernel: Kernel,
    exec: Exec<'_>,
    out: &mut [f64],
) {
    assert!(out.len() >= points.len(), "output buffer too small");
    // Resolve dispatch once on the full sweep size: chunks must never
    // re-dispatch, or the (smaller) final chunk could pick a different
    // kernel than the sequential whole-array path.
    let kernel = kernel.dispatch(points.len(), store.dim());
    if !exec.is_parallel() || points.len() < PAR_MIN_POINTS {
        return dists_to_one_resolved(store, points, q, kernel, out);
    }
    ukc_pool::for_each_slice(exec, &mut out[..points.len()], PAR_CHUNK, |start, slice| {
        dists_to_one_resolved(store, &points[start..start + slice.len()], q, kernel, slice);
    });
}

/// Parallel min-update sweep ([`dists_to_set_min`]): block-parallel over
/// [`PAR_CHUNK`]-row blocks. Elementwise like [`par_dists_to_one`], so
/// bit-identical across every [`Exec`] — this is the Gonzalez inner loop,
/// and the sweep where intra-solve parallelism pays the most.
///
/// # Panics
/// Panics when `min_dist` is shorter than `points`.
pub fn par_dists_to_set_min(
    store: &PointStore,
    points: &[PointId],
    center: PointId,
    kernel: Kernel,
    exec: Exec<'_>,
    min_dist: &mut [f64],
) {
    assert!(min_dist.len() >= points.len(), "min-dist buffer too small");
    let kernel = kernel.dispatch(points.len(), store.dim());
    if !exec.is_parallel() || points.len() < PAR_MIN_POINTS {
        return dists_to_set_min_resolved(store, points, center, kernel, min_dist);
    }
    ukc_pool::for_each_slice(
        exec,
        &mut min_dist[..points.len()],
        PAR_CHUNK,
        |start, slice| {
            dists_to_set_min_resolved(
                store,
                &points[start..start + slice.len()],
                center,
                kernel,
                slice,
            );
        },
    );
}

/// Parallel [`nearest_center`] over a large center set: per-chunk argmins
/// are computed independently and folded **in chunk-index order** with a
/// strict `<`, which preserves the sequential first-wins tie-breaking, so
/// the chosen index is independent of the lane count.
///
/// Chunking engages purely by size (`centers.len() >= PAR_MIN_POINTS`),
/// never by [`Exec`]: a sequential `Exec` folds the *same* chunks in the
/// same order, so `threads = 1` and `threads = N` agree bit for bit even
/// in the blocked kernel's rounding corners.
pub fn par_nearest_center(
    store: &PointStore,
    centers: &[PointId],
    q: PointId,
    kernel: Kernel,
    exec: Exec<'_>,
) -> Option<(usize, f64)> {
    let kernel = kernel.dispatch(centers.len(), store.dim());
    if centers.len() < PAR_MIN_POINTS {
        return nearest_center_resolved(store, centers, q, kernel);
    }
    let partials = ukc_pool::map_chunks(exec, centers.len(), PAR_CHUNK, |r| {
        nearest_center_resolved(store, &centers[r.clone()], q, kernel)
            .map(|(i, d)| (i + r.start, d))
    });
    let mut best: Option<(usize, f64)> = None;
    for p in partials.into_iter().flatten() {
        if best.is_none_or(|(_, bd)| p.1 < bd) {
            best = Some(p);
        }
    }
    best
}

/// Tightens a running minimum against a whole center set:
/// `min_dist[i] = min(min_dist[i], min_c d(points[i], centers[c]))` — the
/// k-center cost sweep, fused across centers.
///
/// For `Scalar`/`Blocked` this is exactly `centers.len()` passes of
/// [`dists_to_set_min`] (unchanged arithmetic and results). The tiled
/// kernel instead packs the centers into [`tile::CenterPanels`] once and
/// streams each point row past all of them in a single pass — the
/// compute-bound mini-GEMM this kernel exists for.
///
/// # Panics
/// Panics when `min_dist` is shorter than `points`.
pub fn dists_to_centers_min(
    store: &PointStore,
    points: &[PointId],
    centers: &[PointId],
    kernel: Kernel,
    min_dist: &mut [f64],
) {
    par_dists_to_centers_min(store, points, centers, kernel, Exec::sequential(), min_dist);
}

/// Parallel [`dists_to_centers_min`]: the tiled path packs panels once
/// and chunks the *points* ([`PAR_CHUNK`] rows per lane); each point's
/// center loop runs entirely inside one chunk, so results are
/// bit-identical for every [`Exec`].
///
/// # Panics
/// Panics when `min_dist` is shorter than `points`.
pub fn par_dists_to_centers_min(
    store: &PointStore,
    points: &[PointId],
    centers: &[PointId],
    kernel: Kernel,
    exec: Exec<'_>,
    min_dist: &mut [f64],
) {
    assert!(min_dist.len() >= points.len(), "min-dist buffer too small");
    // Dispatch on the sweep's total work (n·k pair evaluations). Only the
    // tiled kernel has a fused path; everything else — including a tiled
    // request demoted below the cutoff — runs the per-center passes,
    // which re-dispatch per pass exactly like direct calls.
    let work = points.len().saturating_mul(centers.len());
    match kernel.dispatch(work, store.dim()) {
        Kernel::Tiled => {
            if let Some(v) = tiled_view_f32(store) {
                par_centers_min_tiled(&v, points, centers, exec, min_dist);
            } else {
                par_centers_min_tiled(&tiled_view_f64(store), points, centers, exec, min_dist);
            }
        }
        _ => {
            for c in centers {
                par_dists_to_set_min(store, points, *c, kernel, exec, min_dist);
            }
        }
    }
}

fn par_centers_min_tiled<T: tile::Coord>(
    v: &TiledView<'_, T>,
    points: &[PointId],
    centers: &[PointId],
    exec: Exec<'_>,
    min_dist: &mut [f64],
) {
    let panels = pack_panels(v, centers);
    if !exec.is_parallel() || points.len() < PAR_MIN_POINTS {
        return dists_to_centers_min_tiled(v, points, &panels, min_dist);
    }
    ukc_pool::for_each_slice(
        exec,
        &mut min_dist[..points.len()],
        PAR_CHUNK,
        |start, slice| {
            dists_to_centers_min_tiled(v, &points[start..start + slice.len()], &panels, slice);
        },
    );
}

fn dists_to_centers_min_tiled<T: tile::Coord>(
    v: &TiledView<'_, T>,
    points: &[PointId],
    panels: &tile::CenterPanels,
    min_dist: &mut [f64],
) {
    if panels.is_empty() {
        return;
    }
    let mut blocks = points.chunks_exact(tile::TILE_POINTS);
    let mut i = 0;
    for blk in &mut blocks {
        let rows = [v.row(blk[0]), v.row(blk[1]), v.row(blk[2]), v.row(blk[3])];
        let norms = [
            v.norm_sq(blk[0]),
            v.norm_sq(blk[1]),
            v.norm_sq(blk[2]),
            v.norm_sq(blk[3]),
        ];
        let mut best = [f64::INFINITY; tile::TILE_POINTS];
        for g in 0..panels.n_panels() {
            let dots = tile::dots_x4_panel(rows, panels.panel_coords(g));
            let cn = panels.panel_norms_sq(g);
            for p in 0..tile::TILE_POINTS {
                for c in 0..tile::TILE_CENTERS {
                    // Padded columns carry +∞ norms, so their nd_sq is +∞
                    // and the strict `<` can never select them.
                    let nd_sq = ((norms[p] + cn[c]) - 2.0 * dots[p][c]).max(0.0);
                    if nd_sq < best[p] {
                        best[p] = nd_sq;
                    }
                }
            }
        }
        for p in 0..tile::TILE_POINTS {
            let d = &mut min_dist[i + p];
            if best[p] < *d * *d {
                *d = best[p].sqrt();
            }
        }
        i += tile::TILE_POINTS;
    }
    for &id in blocks.remainder() {
        let row = v.row(id);
        let n = v.norm_sq(id);
        let mut best = f64::INFINITY;
        for g in 0..panels.n_panels() {
            let dots = tile::dot_panel(row, panels.panel_coords(g));
            let cn = panels.panel_norms_sq(g);
            for c in 0..tile::TILE_CENTERS {
                let nd_sq = ((n + cn[c]) - 2.0 * dots[c]).max(0.0);
                if nd_sq < best {
                    best = nd_sq;
                }
            }
        }
        let d = &mut min_dist[i];
        if best < *d * *d {
            *d = best.sqrt();
        }
        i += 1;
    }
}

/// Fills `out[i]` with the index and distance of the center nearest
/// `points[i]`, ties toward the lower index — the batched assignment
/// sweep, fused across centers.
///
/// For `Scalar`/`Blocked` this runs one [`nearest_center`] per query (the
/// arithmetic `nearest_each` always used). The tiled kernel packs the
/// centers into panels and computes every query's argmin in one streaming
/// pass — an `n × k` mini-GEMM. Tiled distances here are bit-identical to
/// the per-query [`nearest_center`] tiled path (same canonical per-pair
/// order, same ascending-index strict-`<` argmin).
///
/// # Panics
/// Panics when `out` is shorter than `points`, or when `centers` is empty
/// while `points` is not.
pub fn nearest_center_each(
    store: &PointStore,
    points: &[PointId],
    centers: &[PointId],
    kernel: Kernel,
    out: &mut [(usize, f64)],
) {
    par_nearest_center_each(store, points, centers, kernel, Exec::sequential(), out);
}

/// Parallel [`nearest_center_each`]: chunks the queries; per-query work
/// never crosses a chunk, so results are bit-identical for every
/// [`Exec`].
///
/// # Panics
/// Panics when `out` is shorter than `points`, or when `centers` is empty
/// while `points` is not.
pub fn par_nearest_center_each(
    store: &PointStore,
    points: &[PointId],
    centers: &[PointId],
    kernel: Kernel,
    exec: Exec<'_>,
    out: &mut [(usize, f64)],
) {
    assert!(out.len() >= points.len(), "output buffer too small");
    if points.is_empty() {
        // Trivially done, even with no centers (the trait contract).
        return;
    }
    assert!(
        !centers.is_empty(),
        "nearest_center_each requires at least one center"
    );
    let work = points.len().saturating_mul(centers.len());
    match kernel.dispatch(work, store.dim()) {
        Kernel::Tiled => {
            if let Some(v) = tiled_view_f32(store) {
                par_nearest_each_tiled(&v, points, centers, exec, out);
            } else {
                par_nearest_each_tiled(&tiled_view_f64(store), points, centers, exec, out);
            }
        }
        _ => {
            // One (size-chunked) nearest per query, consistent with
            // `Metric::nearest`; chunk the queries across lanes.
            let per_query = |start: usize, slice: &mut [(usize, f64)]| {
                for (q, o) in points[start..start + slice.len()].iter().zip(slice) {
                    *o = par_nearest_center(store, centers, *q, kernel, Exec::sequential())
                        .expect("non-empty centers");
                }
            };
            if !exec.is_parallel() || points.len() < PAR_MIN_POINTS {
                per_query(0, &mut out[..points.len()]);
            } else {
                ukc_pool::for_each_slice(exec, &mut out[..points.len()], PAR_CHUNK, per_query);
            }
        }
    }
}

fn par_nearest_each_tiled<T: tile::Coord>(
    v: &TiledView<'_, T>,
    points: &[PointId],
    centers: &[PointId],
    exec: Exec<'_>,
    out: &mut [(usize, f64)],
) {
    let panels = pack_panels(v, centers);
    if !exec.is_parallel() || points.len() < PAR_MIN_POINTS {
        return nearest_each_tiled(v, points, &panels, out);
    }
    ukc_pool::for_each_slice(exec, &mut out[..points.len()], PAR_CHUNK, |start, slice| {
        nearest_each_tiled(v, &points[start..start + slice.len()], &panels, slice);
    });
}

fn nearest_each_tiled<T: tile::Coord>(
    v: &TiledView<'_, T>,
    points: &[PointId],
    panels: &tile::CenterPanels,
    out: &mut [(usize, f64)],
) {
    debug_assert!(!panels.is_empty());
    let mut blocks = points.chunks_exact(tile::TILE_POINTS);
    let mut i = 0;
    for blk in &mut blocks {
        let rows = [v.row(blk[0]), v.row(blk[1]), v.row(blk[2]), v.row(blk[3])];
        let norms = [
            v.norm_sq(blk[0]),
            v.norm_sq(blk[1]),
            v.norm_sq(blk[2]),
            v.norm_sq(blk[3]),
        ];
        let mut best_sq = [f64::INFINITY; tile::TILE_POINTS];
        let mut best_idx = [0usize; tile::TILE_POINTS];
        for g in 0..panels.n_panels() {
            let dots = tile::dots_x4_panel(rows, panels.panel_coords(g));
            let cn = panels.panel_norms_sq(g);
            for p in 0..tile::TILE_POINTS {
                for c in 0..tile::TILE_CENTERS {
                    let nd_sq = ((norms[p] + cn[c]) - 2.0 * dots[p][c]).max(0.0);
                    // Strict `<` over ascending center index: first wins.
                    if nd_sq < best_sq[p] {
                        best_sq[p] = nd_sq;
                        best_idx[p] = g * tile::TILE_CENTERS + c;
                    }
                }
            }
        }
        for p in 0..tile::TILE_POINTS {
            out[i + p] = (best_idx[p], best_sq[p].sqrt());
        }
        i += tile::TILE_POINTS;
    }
    for &id in blocks.remainder() {
        let row = v.row(id);
        let n = v.norm_sq(id);
        let mut best_sq = f64::INFINITY;
        let mut best_idx = 0usize;
        for g in 0..panels.n_panels() {
            let dots = tile::dot_panel(row, panels.panel_coords(g));
            let cn = panels.panel_norms_sq(g);
            for c in 0..tile::TILE_CENTERS {
                let nd_sq = ((n + cn[c]) - 2.0 * dots[c]).max(0.0);
                if nd_sq < best_sq {
                    best_sq = nd_sq;
                    best_idx = g * tile::TILE_CENTERS + c;
                }
            }
        }
        out[i] = (best_idx, best_sq.sqrt());
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// Weighted (Apollonius) sweeps: additively-weighted nearest-center geometry.
//
// Every routine below is the `d(p, cᵢ) − wᵢ` form of its unweighted
// sibling: each center carries an additive weight subtracted from the
// Euclidean distance, which turns nearest-center cells from a Voronoi
// into an Apollonius diagram. The factorized kernels stay in squared
// space through the *threshold* comparison
//
//   d − w < m   ⟺   d < m + w   ⟺   d² < (m + w)²  when  m + w > 0,
//
// and a (non-negative) distance can never undercut a non-positive
// threshold, so the guard `t > 0.0 && nd_sq < t·t` is exact. At `w = 0`
// the threshold is the running minimum itself and every comparison and
// write degenerates to the plain sweep's operation sequence — the
// weighted path is bit-identical to the unweighted one, which
// `tests/weighted_equivalence.rs` pins for all three kernels and both
// storage modes. The same one-accumulator-ascending-dim per-pair dot,
// +∞-padded panel columns (their `nd_sq` is +∞ and can never pass a
// strict `<`), lowest-index tie-breaking, and one-eval-per-pair
// instrumentation contract all carry over unchanged.
// ---------------------------------------------------------------------------

/// Tightens a running *weighted* minimum against a new center carrying
/// additive weight `w`:
/// `min_dist[i] = min(min_dist[i], d(points[i], center) − w)` — the
/// Apollonius form of [`dists_to_set_min`], and the inner loop of the
/// weighted Gonzalez sweep. `min_dist` holds weighted distances (which
/// may be negative once a weight exceeds a distance).
///
/// # Panics
/// Panics when `min_dist` is shorter than `points`.
pub fn dists_to_set_min_weighted(
    store: &PointStore,
    points: &[PointId],
    center: PointId,
    w: f64,
    kernel: Kernel,
    min_dist: &mut [f64],
) {
    assert!(min_dist.len() >= points.len(), "min-dist buffer too small");
    dists_to_set_min_weighted_resolved(
        store,
        points,
        center,
        w,
        kernel.dispatch(points.len(), store.dim()),
        min_dist,
    );
}

/// [`dists_to_set_min_weighted`] after dispatch (see
/// [`dists_to_one_resolved`]).
fn dists_to_set_min_weighted_resolved(
    store: &PointStore,
    points: &[PointId],
    center: PointId,
    w: f64,
    kernel: Kernel,
    min_dist: &mut [f64],
) {
    match kernel {
        Kernel::Scalar => {
            let cc = store.coords(center);
            for (p, d) in points.iter().zip(min_dist.iter_mut()) {
                let nd = dist_sq_scalar(store.coords(*p), cc).sqrt() - w;
                if nd < *d {
                    *d = nd;
                }
            }
        }
        Kernel::Blocked => {
            // Threshold comparison in squared space: the sqrt runs only on
            // an actual improvement, exactly like the plain sweep.
            let cc = store.coords(center);
            let cn = store.norm_sq(center);
            for (p, d) in points.iter().zip(min_dist.iter_mut()) {
                let nd_sq = dist_sq_blocked(store.coords(*p), store.norm_sq(*p), cc, cn);
                let t = *d + w;
                if t > 0.0 && nd_sq < t * t {
                    *d = nd_sq.sqrt() - w;
                }
            }
        }
        Kernel::Tiled => {
            if let Some(v) = tiled_view_f32(store) {
                dists_to_set_min_weighted_tiled(&v, points, center, w, min_dist);
            } else {
                dists_to_set_min_weighted_tiled(
                    &tiled_view_f64(store),
                    points,
                    center,
                    w,
                    min_dist,
                );
            }
        }
    }
}

fn dists_to_set_min_weighted_tiled<T: tile::Coord>(
    v: &TiledView<'_, T>,
    points: &[PointId],
    center: PointId,
    w: f64,
    min_dist: &mut [f64],
) {
    let cc = v.row(center);
    let cn = v.norm_sq(center);
    let mut blocks = points.chunks_exact(tile::TILE_POINTS);
    let mut i = 0;
    for blk in &mut blocks {
        let rows = [v.row(blk[0]), v.row(blk[1]), v.row(blk[2]), v.row(blk[3])];
        let dots = tile::dots_x4_one(rows, cc);
        for p in 0..tile::TILE_POINTS {
            let nd_sq = ((v.norm_sq(blk[p]) + cn) - 2.0 * dots[p]).max(0.0);
            let d = &mut min_dist[i + p];
            let t = *d + w;
            if t > 0.0 && nd_sq < t * t {
                *d = nd_sq.sqrt() - w;
            }
        }
        i += tile::TILE_POINTS;
    }
    for &id in blocks.remainder() {
        let nd_sq = ((v.norm_sq(id) + cn) - 2.0 * tile::dot_seq(v.row(id), cc)).max(0.0);
        let d = &mut min_dist[i];
        let t = *d + w;
        if t > 0.0 && nd_sq < t * t {
            *d = nd_sq.sqrt() - w;
        }
        i += 1;
    }
}

/// Parallel [`dists_to_set_min_weighted`]: block-parallel over
/// [`PAR_CHUNK`]-row blocks, elementwise like [`par_dists_to_set_min`],
/// so bit-identical across every [`Exec`].
///
/// # Panics
/// Panics when `min_dist` is shorter than `points`.
pub fn par_dists_to_set_min_weighted(
    store: &PointStore,
    points: &[PointId],
    center: PointId,
    w: f64,
    kernel: Kernel,
    exec: Exec<'_>,
    min_dist: &mut [f64],
) {
    assert!(min_dist.len() >= points.len(), "min-dist buffer too small");
    let kernel = kernel.dispatch(points.len(), store.dim());
    if !exec.is_parallel() || points.len() < PAR_MIN_POINTS {
        return dists_to_set_min_weighted_resolved(store, points, center, w, kernel, min_dist);
    }
    ukc_pool::for_each_slice(
        exec,
        &mut min_dist[..points.len()],
        PAR_CHUNK,
        |start, slice| {
            dists_to_set_min_weighted_resolved(
                store,
                &points[start..start + slice.len()],
                center,
                w,
                kernel,
                slice,
            );
        },
    );
}

/// Index (into `centers`) and *weighted* distance `d(q, cᵢ) − wᵢ` of the
/// weighted-nearest center, ties broken toward the lower index; `None`
/// for an empty center set.
///
/// # Panics
/// Panics when `weights` and `centers` differ in length.
pub fn nearest_center_weighted(
    store: &PointStore,
    centers: &[PointId],
    weights: &[f64],
    q: PointId,
    kernel: Kernel,
) -> Option<(usize, f64)> {
    nearest_center_weighted_resolved(
        store,
        centers,
        weights,
        q,
        kernel.dispatch(centers.len(), store.dim()),
    )
}

/// [`nearest_center_weighted`] after dispatch (see
/// [`dists_to_one_resolved`]).
fn nearest_center_weighted_resolved(
    store: &PointStore,
    centers: &[PointId],
    weights: &[f64],
    q: PointId,
    kernel: Kernel,
) -> Option<(usize, f64)> {
    assert_eq!(
        centers.len(),
        weights.len(),
        "one weight per center required"
    );
    match kernel {
        Kernel::Scalar => {
            let qc = store.coords(q);
            let mut best: Option<(usize, f64)> = None;
            for (i, c) in centers.iter().enumerate() {
                let d = dist_sq_scalar(store.coords(*c), qc).sqrt() - weights[i];
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((i, d));
                }
            }
            best
        }
        Kernel::Blocked => {
            // The running best is a weighted distance; candidates screen
            // in squared space through the threshold `best + wᵢ`, paying
            // a sqrt only past the screen. The screen is conservative
            // (`<=`): `(d − w) + w` can round *above* `d`, so a strict
            // squared test could re-take an exactly tied center and break
            // lowest-index tie-breaking — the exact decision is the
            // strict `<` on the weighted distance itself.
            let qc = store.coords(q);
            let qn = store.norm_sq(q);
            let mut best: Option<(usize, f64)> = None;
            for (i, c) in centers.iter().enumerate() {
                let d_sq = dist_sq_blocked(store.coords(*c), store.norm_sq(*c), qc, qn);
                match best {
                    None => best = Some((i, d_sq.sqrt() - weights[i])),
                    Some((_, bd)) => {
                        let t = bd + weights[i];
                        if t > 0.0 && d_sq <= t * t {
                            let nd = d_sq.sqrt() - weights[i];
                            if nd < bd {
                                best = Some((i, nd));
                            }
                        }
                    }
                }
            }
            best
        }
        Kernel::Tiled => {
            if let Some(v) = tiled_view_f32(store) {
                nearest_center_weighted_tiled(&v, centers, weights, q)
            } else {
                nearest_center_weighted_tiled(&tiled_view_f64(store), centers, weights, q)
            }
        }
    }
}

fn nearest_center_weighted_tiled<T: tile::Coord>(
    v: &TiledView<'_, T>,
    centers: &[PointId],
    weights: &[f64],
    q: PointId,
) -> Option<(usize, f64)> {
    let qr = v.row(q);
    let qn = v.norm_sq(q);
    let mut best: Option<(usize, f64)> = None;
    for (i, c) in centers.iter().enumerate() {
        let d_sq = ((v.norm_sq(*c) + qn) - 2.0 * tile::dot_seq(v.row(*c), qr)).max(0.0);
        match best {
            None => best = Some((i, d_sq.sqrt() - weights[i])),
            Some((_, bd)) => {
                // Conservative squared-space screen, exact linear-space
                // decision (see the Blocked arm of
                // `nearest_center_weighted_resolved`).
                let t = bd + weights[i];
                if t > 0.0 && d_sq <= t * t {
                    let nd = d_sq.sqrt() - weights[i];
                    if nd < bd {
                        best = Some((i, nd));
                    }
                }
            }
        }
    }
    best
}

/// Parallel [`nearest_center_weighted`] over a large center set:
/// per-chunk winners fold **in chunk-index order** with a strict `<` on
/// the weighted distance, preserving first-wins tie-breaking. Chunking
/// engages purely by size, never by [`Exec`], so `threads = 1` and
/// `threads = N` agree bit for bit.
///
/// # Panics
/// Panics when `weights` and `centers` differ in length.
pub fn par_nearest_center_weighted(
    store: &PointStore,
    centers: &[PointId],
    weights: &[f64],
    q: PointId,
    kernel: Kernel,
    exec: Exec<'_>,
) -> Option<(usize, f64)> {
    assert_eq!(
        centers.len(),
        weights.len(),
        "one weight per center required"
    );
    let kernel = kernel.dispatch(centers.len(), store.dim());
    if centers.len() < PAR_MIN_POINTS {
        return nearest_center_weighted_resolved(store, centers, weights, q, kernel);
    }
    let partials = ukc_pool::map_chunks(exec, centers.len(), PAR_CHUNK, |r| {
        nearest_center_weighted_resolved(store, &centers[r.clone()], &weights[r.clone()], q, kernel)
            .map(|(i, d)| (i + r.start, d))
    });
    let mut best: Option<(usize, f64)> = None;
    for p in partials.into_iter().flatten() {
        if best.is_none_or(|(_, bd)| p.1 < bd) {
            best = Some(p);
        }
    }
    best
}

/// Weighted [`dists_to_centers_min`]:
/// `min_dist[i] = min(min_dist[i], min_c d(points[i], cᵢ) − wᵢ)`.
///
/// Unlike the plain fused sweep, the weighted tiled path applies the
/// per-center threshold update in ascending center order inside one
/// streaming pass, so it is **bit-identical** to `centers.len()` passes
/// of [`dists_to_set_min_weighted`] under the same resolved kernel.
///
/// # Panics
/// Panics when `min_dist` is shorter than `points`, or when `weights`
/// and `centers` differ in length.
pub fn dists_to_centers_min_weighted(
    store: &PointStore,
    points: &[PointId],
    centers: &[PointId],
    weights: &[f64],
    kernel: Kernel,
    min_dist: &mut [f64],
) {
    par_dists_to_centers_min_weighted(
        store,
        points,
        centers,
        weights,
        kernel,
        Exec::sequential(),
        min_dist,
    );
}

/// Parallel [`dists_to_centers_min_weighted`]: the tiled path packs
/// panels once and chunks the points; each point's center loop runs
/// entirely inside one chunk, so results are bit-identical for every
/// [`Exec`].
///
/// # Panics
/// Panics when `min_dist` is shorter than `points`, or when `weights`
/// and `centers` differ in length.
pub fn par_dists_to_centers_min_weighted(
    store: &PointStore,
    points: &[PointId],
    centers: &[PointId],
    weights: &[f64],
    kernel: Kernel,
    exec: Exec<'_>,
    min_dist: &mut [f64],
) {
    assert!(min_dist.len() >= points.len(), "min-dist buffer too small");
    assert_eq!(
        centers.len(),
        weights.len(),
        "one weight per center required"
    );
    let work = points.len().saturating_mul(centers.len());
    match kernel.dispatch(work, store.dim()) {
        Kernel::Tiled => {
            if let Some(v) = tiled_view_f32(store) {
                par_centers_min_weighted_tiled(&v, points, centers, weights, exec, min_dist);
            } else {
                par_centers_min_weighted_tiled(
                    &tiled_view_f64(store),
                    points,
                    centers,
                    weights,
                    exec,
                    min_dist,
                );
            }
        }
        kernel => {
            for (c, w) in centers.iter().zip(weights) {
                par_dists_to_set_min_weighted(store, points, *c, *w, kernel, exec, min_dist);
            }
        }
    }
}

/// Weights re-laid to panel slots: pad columns get `0.0`, which is
/// harmless — their `+∞` norms already make every padded `nd_sq` `+∞`,
/// and `+∞` never passes a strict `<` threshold test.
fn pad_weights(weights: &[f64], panels: &tile::CenterPanels) -> Vec<f64> {
    let mut padded = vec![0.0; panels.n_panels() * tile::TILE_CENTERS];
    padded[..weights.len()].copy_from_slice(weights);
    padded
}

fn par_centers_min_weighted_tiled<T: tile::Coord>(
    v: &TiledView<'_, T>,
    points: &[PointId],
    centers: &[PointId],
    weights: &[f64],
    exec: Exec<'_>,
    min_dist: &mut [f64],
) {
    let panels = pack_panels(v, centers);
    let wpad = pad_weights(weights, &panels);
    if !exec.is_parallel() || points.len() < PAR_MIN_POINTS {
        return dists_to_centers_min_weighted_tiled(v, points, &panels, &wpad, min_dist);
    }
    ukc_pool::for_each_slice(
        exec,
        &mut min_dist[..points.len()],
        PAR_CHUNK,
        |start, slice| {
            dists_to_centers_min_weighted_tiled(
                v,
                &points[start..start + slice.len()],
                &panels,
                &wpad,
                slice,
            );
        },
    );
}

fn dists_to_centers_min_weighted_tiled<T: tile::Coord>(
    v: &TiledView<'_, T>,
    points: &[PointId],
    panels: &tile::CenterPanels,
    wpad: &[f64],
    min_dist: &mut [f64],
) {
    if panels.is_empty() {
        return;
    }
    let mut blocks = points.chunks_exact(tile::TILE_POINTS);
    let mut i = 0;
    for blk in &mut blocks {
        let rows = [v.row(blk[0]), v.row(blk[1]), v.row(blk[2]), v.row(blk[3])];
        let norms = [
            v.norm_sq(blk[0]),
            v.norm_sq(blk[1]),
            v.norm_sq(blk[2]),
            v.norm_sq(blk[3]),
        ];
        for g in 0..panels.n_panels() {
            let dots = tile::dots_x4_panel(rows, panels.panel_coords(g));
            let cn = panels.panel_norms_sq(g);
            let cw = &wpad[g * tile::TILE_CENTERS..(g + 1) * tile::TILE_CENTERS];
            for p in 0..tile::TILE_POINTS {
                let d = &mut min_dist[i + p];
                for c in 0..tile::TILE_CENTERS {
                    let nd_sq = ((norms[p] + cn[c]) - 2.0 * dots[p][c]).max(0.0);
                    let t = *d + cw[c];
                    if t > 0.0 && nd_sq < t * t {
                        *d = nd_sq.sqrt() - cw[c];
                    }
                }
            }
        }
        i += tile::TILE_POINTS;
    }
    for &id in blocks.remainder() {
        let row = v.row(id);
        let n = v.norm_sq(id);
        let d = &mut min_dist[i];
        for g in 0..panels.n_panels() {
            let dots = tile::dot_panel(row, panels.panel_coords(g));
            let cn = panels.panel_norms_sq(g);
            let cw = &wpad[g * tile::TILE_CENTERS..(g + 1) * tile::TILE_CENTERS];
            for c in 0..tile::TILE_CENTERS {
                let nd_sq = ((n + cn[c]) - 2.0 * dots[c]).max(0.0);
                let t = *d + cw[c];
                if t > 0.0 && nd_sq < t * t {
                    *d = nd_sq.sqrt() - cw[c];
                }
            }
        }
        i += 1;
    }
}

/// Weighted [`nearest_center_each`]: fills `out[i]` with the index and
/// weighted distance of the weighted-nearest center of `points[i]`, ties
/// toward the lower index.
///
/// # Panics
/// Panics when `out` is shorter than `points`, when `weights` and
/// `centers` differ in length, or when `centers` is empty while `points`
/// is not.
pub fn nearest_center_each_weighted(
    store: &PointStore,
    points: &[PointId],
    centers: &[PointId],
    weights: &[f64],
    kernel: Kernel,
    out: &mut [(usize, f64)],
) {
    par_nearest_center_each_weighted(
        store,
        points,
        centers,
        weights,
        kernel,
        Exec::sequential(),
        out,
    );
}

/// Parallel [`nearest_center_each_weighted`]: chunks the queries;
/// per-query work never crosses a chunk, so results are bit-identical
/// for every [`Exec`].
///
/// # Panics
/// Panics when `out` is shorter than `points`, when `weights` and
/// `centers` differ in length, or when `centers` is empty while `points`
/// is not.
pub fn par_nearest_center_each_weighted(
    store: &PointStore,
    points: &[PointId],
    centers: &[PointId],
    weights: &[f64],
    kernel: Kernel,
    exec: Exec<'_>,
    out: &mut [(usize, f64)],
) {
    assert!(out.len() >= points.len(), "output buffer too small");
    assert_eq!(
        centers.len(),
        weights.len(),
        "one weight per center required"
    );
    if points.is_empty() {
        return;
    }
    assert!(
        !centers.is_empty(),
        "nearest_center_each_weighted requires at least one center"
    );
    let work = points.len().saturating_mul(centers.len());
    match kernel.dispatch(work, store.dim()) {
        Kernel::Tiled => {
            if let Some(v) = tiled_view_f32(store) {
                par_nearest_each_weighted_tiled(&v, points, centers, weights, exec, out);
            } else {
                par_nearest_each_weighted_tiled(
                    &tiled_view_f64(store),
                    points,
                    centers,
                    weights,
                    exec,
                    out,
                );
            }
        }
        kernel => {
            let per_query = |start: usize, slice: &mut [(usize, f64)]| {
                for (q, o) in points[start..start + slice.len()].iter().zip(slice) {
                    *o = par_nearest_center_weighted(
                        store,
                        centers,
                        weights,
                        *q,
                        kernel,
                        Exec::sequential(),
                    )
                    .expect("non-empty centers");
                }
            };
            if !exec.is_parallel() || points.len() < PAR_MIN_POINTS {
                per_query(0, &mut out[..points.len()]);
            } else {
                ukc_pool::for_each_slice(exec, &mut out[..points.len()], PAR_CHUNK, per_query);
            }
        }
    }
}

fn par_nearest_each_weighted_tiled<T: tile::Coord>(
    v: &TiledView<'_, T>,
    points: &[PointId],
    centers: &[PointId],
    weights: &[f64],
    exec: Exec<'_>,
    out: &mut [(usize, f64)],
) {
    let panels = pack_panels(v, centers);
    let wpad = pad_weights(weights, &panels);
    if !exec.is_parallel() || points.len() < PAR_MIN_POINTS {
        return nearest_each_weighted_tiled(v, points, &panels, &wpad, out);
    }
    ukc_pool::for_each_slice(exec, &mut out[..points.len()], PAR_CHUNK, |start, slice| {
        nearest_each_weighted_tiled(
            v,
            &points[start..start + slice.len()],
            &panels,
            &wpad,
            slice,
        );
    });
}

fn nearest_each_weighted_tiled<T: tile::Coord>(
    v: &TiledView<'_, T>,
    points: &[PointId],
    panels: &tile::CenterPanels,
    wpad: &[f64],
    out: &mut [(usize, f64)],
) {
    debug_assert!(!panels.is_empty());
    let mut blocks = points.chunks_exact(tile::TILE_POINTS);
    let mut i = 0;
    for blk in &mut blocks {
        let rows = [v.row(blk[0]), v.row(blk[1]), v.row(blk[2]), v.row(blk[3])];
        let norms = [
            v.norm_sq(blk[0]),
            v.norm_sq(blk[1]),
            v.norm_sq(blk[2]),
            v.norm_sq(blk[3]),
        ];
        let mut best = [f64::INFINITY; tile::TILE_POINTS];
        let mut best_idx = [0usize; tile::TILE_POINTS];
        for g in 0..panels.n_panels() {
            let dots = tile::dots_x4_panel(rows, panels.panel_coords(g));
            let cn = panels.panel_norms_sq(g);
            let cw = &wpad[g * tile::TILE_CENTERS..(g + 1) * tile::TILE_CENTERS];
            for p in 0..tile::TILE_POINTS {
                for c in 0..tile::TILE_CENTERS {
                    let nd_sq = ((norms[p] + cn[c]) - 2.0 * dots[p][c]).max(0.0);
                    // Conservative squared-space screen over ascending
                    // center index, exact strict `<` on the weighted
                    // distance itself: `(d − w) + w` can round above
                    // `d`, so a purely squared test could re-take an
                    // exactly tied center and break lowest-index
                    // tie-breaking. Padded (+∞) columns never pass the
                    // linear test.
                    let t = best[p] + cw[c];
                    if t > 0.0 && nd_sq <= t * t {
                        let nd = nd_sq.sqrt() - cw[c];
                        if nd < best[p] {
                            best[p] = nd;
                            best_idx[p] = g * tile::TILE_CENTERS + c;
                        }
                    }
                }
            }
        }
        for p in 0..tile::TILE_POINTS {
            out[i + p] = (best_idx[p], best[p]);
        }
        i += tile::TILE_POINTS;
    }
    for &id in blocks.remainder() {
        let row = v.row(id);
        let n = v.norm_sq(id);
        let mut best = f64::INFINITY;
        let mut best_idx = 0usize;
        for g in 0..panels.n_panels() {
            let dots = tile::dot_panel(row, panels.panel_coords(g));
            let cn = panels.panel_norms_sq(g);
            let cw = &wpad[g * tile::TILE_CENTERS..(g + 1) * tile::TILE_CENTERS];
            for c in 0..tile::TILE_CENTERS {
                let nd_sq = ((n + cn[c]) - 2.0 * dots[c]).max(0.0);
                let t = best + cw[c];
                if t > 0.0 && nd_sq <= t * t {
                    let nd = nd_sq.sqrt() - cw[c];
                    if nd < best {
                        best = nd;
                        best_idx = g * tile::TILE_CENTERS + c;
                    }
                }
            }
        }
        out[i] = (best_idx, best);
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;

    fn store(seed: u64, n: usize, d: usize) -> PointStore {
        let mut s = seed | 1;
        let mut rnd = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::new((0..d).map(|_| rnd() * 10.0 - 5.0).collect()))
            .collect();
        PointStore::from_points(&pts)
    }

    #[test]
    fn dot_blocked_matches_sequential() {
        for d in [1usize, 7, 8, 9, 24, 31] {
            let s = store(d as u64, 2, d);
            let a = s.coords(PointId(0));
            let b = s.coords(PointId(1));
            let sequential: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            assert!((dot_blocked(a, b) - sequential).abs() < 1e-9 * (1.0 + sequential.abs()));
        }
    }

    #[test]
    fn kernels_agree_on_batched_routines() {
        let s = store(11, 20, 9);
        let ids = s.ids();
        for q in [PointId(0), PointId(7), PointId(19)] {
            let mut scalar = vec![0.0; ids.len()];
            let mut blocked = vec![0.0; ids.len()];
            dists_to_one(&s, &ids, q, Kernel::Scalar, &mut scalar);
            dists_to_one(&s, &ids, q, Kernel::Blocked, &mut blocked);
            for (a, b) in scalar.iter().zip(blocked.iter()) {
                assert!((a - b).abs() < 1e-9 * (1.0 + a));
            }
        }
    }

    #[test]
    fn dists_to_set_min_is_running_minimum() {
        let s = store(2, 15, 3);
        let ids = s.ids();
        let mut min_dist = vec![f64::INFINITY; ids.len()];
        for c in [PointId(3), PointId(9)] {
            dists_to_set_min(&s, &ids, c, Kernel::Scalar, &mut min_dist);
        }
        for (i, id) in ids.iter().enumerate() {
            let d3 = dist_sq_scalar(s.coords(*id), s.coords(PointId(3))).sqrt();
            let d9 = dist_sq_scalar(s.coords(*id), s.coords(PointId(9))).sqrt();
            assert_eq!(min_dist[i], d3.min(d9), "point {i}");
        }
    }

    #[test]
    fn nearest_center_ties_prefer_first() {
        let pts = vec![
            Point::new(vec![1.0, 0.0]),
            Point::new(vec![-1.0, 0.0]),
            Point::new(vec![0.0, 0.0]),
        ];
        let s = PointStore::from_points(&pts);
        let centers = [PointId(0), PointId(1)];
        let (idx, d) = nearest_center(&s, &centers, PointId(2), Kernel::Blocked).unwrap();
        assert_eq!(idx, 0);
        assert_eq!(d, 1.0);
        assert!(nearest_center(&s, &[], PointId(2), Kernel::Scalar).is_none());
    }

    #[test]
    fn counter_accumulates() {
        let c = DistCounter::new();
        c.add(3);
        c.add(4);
        assert_eq!(c.count(), 7);
        assert_eq!(c.since(5), 2);
        assert_eq!(c.since(10), 0);
    }

    #[test]
    fn counter_sums_adds_from_many_threads_exactly() {
        let c = DistCounter::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(c.count(), 4000);
    }

    #[test]
    fn par_fills_match_sequential_bitwise() {
        let s = store(21, 2 * PAR_MIN_POINTS + 37, 5);
        let ids = s.ids();
        let pool = ukc_pool::Pool::new(3);
        let exec = Exec::pooled(&pool, 3);
        for kernel in Kernel::ALL {
            let mut seq = vec![0.0; ids.len()];
            dists_to_one(&s, &ids, PointId(5), kernel, &mut seq);
            let mut par = vec![0.0; ids.len()];
            par_dists_to_one(&s, &ids, PointId(5), kernel, exec, &mut par);
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.to_bits(), b.to_bits(), "{kernel:?}");
            }

            let mut seq = vec![f64::INFINITY; ids.len()];
            let mut par = vec![f64::INFINITY; ids.len()];
            for c in [PointId(0), PointId(999), PointId(4321)] {
                dists_to_set_min(&s, &ids, c, kernel, &mut seq);
                par_dists_to_set_min(&s, &ids, c, kernel, exec, &mut par);
            }
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.to_bits(), b.to_bits(), "{kernel:?}");
            }
        }
    }

    #[test]
    fn par_nearest_center_is_lane_count_independent() {
        // d = 5 keeps the factorized kernels above the dispatch cutoff.
        let s = store(4, PAR_MIN_POINTS + 123, 5);
        let centers = s.ids();
        let pool = ukc_pool::Pool::new(4);
        for kernel in Kernel::ALL {
            for q in [PointId(0), PointId(17), PointId(4000)] {
                let seq = par_nearest_center(&s, &centers, q, kernel, Exec::sequential());
                let par = par_nearest_center(&s, &centers, q, kernel, Exec::pooled(&pool, 4));
                let (si, sd) = seq.expect("non-empty centers");
                let (pi, pd) = par.expect("non-empty centers");
                assert_eq!(si, pi, "{kernel:?}");
                assert_eq!(sd.to_bits(), pd.to_bits(), "{kernel:?}");
            }
        }
        assert!(
            par_nearest_center(&s, &[], PointId(0), Kernel::Scalar, Exec::sequential()).is_none()
        );
    }

    #[test]
    fn dispatch_is_pinned_to_measured_cutoffs() {
        for k in Kernel::ALL {
            // Low dimension never factorizes (BENCH_kernel.json d=2 rows).
            assert_eq!(k.dispatch(1_000_000, 2), Kernel::Scalar);
        }
        // Scalar always passes through.
        assert_eq!(Kernel::Scalar.dispatch(1_000_000, 32), Kernel::Scalar);
        // Below the measured work cutoff (n=1k, d=8 loses): scalar.
        assert_eq!(Kernel::Blocked.dispatch(1_000, 8), Kernel::Scalar);
        assert_eq!(Kernel::Tiled.dispatch(1_000, 8), Kernel::Scalar);
        // From the cutoff upward the requested kernel runs (n=1k, d=32).
        assert_eq!(Kernel::Blocked.dispatch(1_000, 32), Kernel::Blocked);
        assert_eq!(Kernel::Tiled.dispatch(1_000, 32), Kernel::Tiled);
        // The boundary is inclusive: work == FACTORIZED_MIN_WORK engages.
        let evals = FACTORIZED_MIN_WORK / 4;
        assert_eq!(Kernel::Tiled.dispatch(evals, 4), Kernel::Tiled);
        assert_eq!(Kernel::Tiled.dispatch(evals - 1, 4), Kernel::Scalar);
    }

    #[test]
    fn kernel_parse_roundtrips_names() {
        for k in Kernel::ALL {
            assert_eq!(Kernel::parse(k.name()), Some(k));
        }
        assert_eq!(Kernel::parse("simd"), None);
        assert_eq!(Kernel::parse(""), None);
    }

    #[test]
    fn par_chunks_align_with_point_tiles() {
        // Chunk boundaries land on tile boundaries, so only the global
        // tail block is a remainder regardless of chunking.
        assert_eq!(PAR_CHUNK % tile::TILE_POINTS, 0);
    }

    #[test]
    fn tiled_matches_scalar_within_tolerance() {
        // 602·33 work keeps the public entries on the tiled path; 602 % 4
        // exercises the block remainder.
        let s = store(31, 602, 33);
        let ids = s.ids();
        let mut scalar = vec![0.0; ids.len()];
        let mut tiled = vec![0.0; ids.len()];
        dists_to_one(&s, &ids, PointId(7), Kernel::Scalar, &mut scalar);
        dists_to_one(&s, &ids, PointId(7), Kernel::Tiled, &mut tiled);
        for (a, b) in scalar.iter().zip(&tiled) {
            assert!((a - b).abs() < 1e-9 * (1.0 + a));
        }

        let mut ms = vec![f64::INFINITY; ids.len()];
        let mut mt = vec![f64::INFINITY; ids.len()];
        for c in [PointId(3), PointId(11), PointId(600)] {
            dists_to_set_min(&s, &ids, c, Kernel::Scalar, &mut ms);
            dists_to_set_min(&s, &ids, c, Kernel::Tiled, &mut mt);
        }
        for (a, b) in ms.iter().zip(&mt) {
            assert!((a - b).abs() < 1e-9 * (1.0 + a));
        }
    }

    #[test]
    fn tiled_self_and_duplicate_distances_are_exactly_zero() {
        let s = store(5, 9, 17);
        for i in 0..9 {
            assert_eq!(pair_dist(&s, PointId(i), PointId(i), Kernel::Tiled), 0.0);
        }
        let mut s2 = PointStore::new(3);
        let a = s2.push(&[1.25, -7.5, 3.125]);
        let b = s2.push(&[1.25, -7.5, 3.125]);
        assert_eq!(pair_dist(&s2, a, b, Kernel::Tiled), 0.0);
    }

    #[test]
    fn fused_centers_min_matches_per_pair_reference_bitwise() {
        // 203 % 4 = 3 remainder rows; 6 centers = one padded panel; the
        // 203·6·40 work engages tiled through the public entry.
        let s = store(13, 203, 40);
        let ids = s.ids();
        let centers: Vec<PointId> = (0..6).map(|i| PointId(i * 30)).collect();
        let mut fused = vec![f64::INFINITY; ids.len()];
        dists_to_centers_min(&s, &ids, &centers, Kernel::Tiled, &mut fused);
        for (i, id) in ids.iter().enumerate() {
            // Reference: min over centers of the canonical tiled squared
            // distance, one sqrt at the end — the documented semantics.
            let n = s.norm_sq_seq(*id);
            let mut best = f64::INFINITY;
            for c in &centers {
                let nd_sq = ((n + s.norm_sq_seq(*c))
                    - 2.0 * tile::dot_seq(s.coords(*id), s.coords(*c)))
                .max(0.0);
                if nd_sq < best {
                    best = nd_sq;
                }
            }
            assert_eq!(fused[i].to_bits(), best.sqrt().to_bits(), "point {i}");
        }
    }

    #[test]
    fn fused_centers_min_agrees_with_per_center_passes() {
        let s = store(23, 202, 40);
        let ids = s.ids();
        let centers: Vec<PointId> = (0..5).map(|i| PointId(i * 40 + 1)).collect();
        for kernel in Kernel::ALL {
            let mut fused = vec![f64::INFINITY; ids.len()];
            dists_to_centers_min(&s, &ids, &centers, kernel, &mut fused);
            let mut loops = vec![f64::INFINITY; ids.len()];
            for c in &centers {
                dists_to_set_min(&s, &ids, *c, kernel, &mut loops);
            }
            for (a, b) in fused.iter().zip(&loops) {
                // Tolerance, not bits: the per-center passes round through
                // sqrt between updates, the fused pass does not.
                assert!((a - b).abs() < 1e-9 * (1.0 + a), "{kernel:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn fused_nearest_each_matches_per_query_nearest_bitwise() {
        let s = store(17, 202, 40);
        let ids = s.ids();
        let centers: Vec<PointId> = (0..7).map(|i| PointId(i * 25)).collect();
        let mut fused = vec![(0usize, 0.0f64); ids.len()];
        nearest_center_each(&s, &ids, &centers, Kernel::Tiled, &mut fused);
        for (i, id) in ids.iter().enumerate() {
            // The per-query tiled path (bypassing dispatch: 7 centers is
            // far below the cutoff) must agree bit for bit — same
            // canonical per-pair order, same ascending strict-< argmin.
            let (bi, bd) = nearest_center_resolved(&s, &centers, *id, Kernel::Tiled).unwrap();
            assert_eq!(fused[i].0, bi, "point {i}");
            assert_eq!(fused[i].1.to_bits(), bd.to_bits(), "point {i}");
        }
    }

    #[test]
    fn fused_nearest_ties_prefer_lowest_index_across_panels() {
        // Six identical centers span two panels; every query must pick
        // index 0 even though panel 1 holds equally-near copies.
        let mut s = PointStore::new(8);
        let c = [0.5, -1.0, 2.0, 0.25, -3.0, 1.0, 0.0, 4.0];
        for _ in 0..6 {
            s.push(&c);
        }
        for i in 0..40 {
            let mut p = c;
            p[0] += (i as f64) * 0.1 + 0.1;
            s.push(&p);
        }
        let queries = s.ids();
        let centers: Vec<PointId> = (0..6).map(PointId).collect();
        let mut out = vec![(9usize, -1.0f64); queries.len()];
        // Call the tiled path directly: this sweep sits below the
        // dispatch cutoff on purpose (ties are a small-case hazard too).
        let v = tiled_view_f64(&s);
        let panels = pack_panels(&v, &centers);
        nearest_each_tiled(&v, &queries, &panels, &mut out);
        for (i, (idx, d)) in out.iter().enumerate() {
            assert_eq!(*idx, 0, "query {i} must tie-break to the lowest index");
            assert!(d.is_finite());
        }
    }

    #[test]
    fn center_panels_pad_with_infinite_norms() {
        let s = store(3, 10, 5);
        let v = tiled_view_f64(&s);
        let centers: Vec<PointId> = (0..5).map(PointId).collect();
        let panels = pack_panels(&v, &centers);
        assert_eq!(panels.len(), 5);
        assert_eq!(panels.n_panels(), 2);
        let tail = panels.panel_norms_sq(1);
        assert_eq!(tail[0], s.norm_sq_seq(PointId(4)));
        assert!(tail[1..].iter().all(|n| n.is_infinite()));
        // Column-major layout: coordinate t of panel-local center j.
        for (c, id) in centers.iter().enumerate() {
            let (g, j) = (c / tile::TILE_CENTERS, c % tile::TILE_CENTERS);
            for t in 0..5 {
                assert_eq!(
                    panels.panel_coords(g)[t * tile::TILE_CENTERS + j],
                    s.coords(*id)[t]
                );
            }
        }
    }

    #[test]
    fn par_fused_sweeps_match_sequential_bitwise() {
        let s = store(29, 2 * PAR_MIN_POINTS + 31, 7);
        let ids = s.ids();
        let centers: Vec<PointId> = (0..9).map(|i| PointId(i * 123)).collect();
        let pool = ukc_pool::Pool::new(3);
        let exec = Exec::pooled(&pool, 3);
        for kernel in Kernel::ALL {
            let mut seq = vec![f64::INFINITY; ids.len()];
            dists_to_centers_min(&s, &ids, &centers, kernel, &mut seq);
            let mut par = vec![f64::INFINITY; ids.len()];
            par_dists_to_centers_min(&s, &ids, &centers, kernel, exec, &mut par);
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.to_bits(), b.to_bits(), "{kernel:?}");
            }

            let mut seq = vec![(0usize, 0.0f64); ids.len()];
            nearest_center_each(&s, &ids, &centers, kernel, &mut seq);
            let mut par = vec![(0usize, 0.0f64); ids.len()];
            par_nearest_center_each(&s, &ids, &centers, kernel, exec, &mut par);
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.0, b.0, "{kernel:?}");
                assert_eq!(a.1.to_bits(), b.1.to_bits(), "{kernel:?}");
            }
        }
    }

    #[test]
    fn weighted_sweeps_at_zero_weight_match_plain_bitwise() {
        let s = store(41, 317, 9);
        let ids = s.ids();
        let centers: Vec<PointId> = (0..7).map(|i| PointId(i * 41)).collect();
        let zeros = vec![0.0; centers.len()];
        for kernel in Kernel::ALL {
            let mut plain = vec![f64::INFINITY; ids.len()];
            let mut weighted = vec![f64::INFINITY; ids.len()];
            for c in &centers {
                dists_to_set_min(&s, &ids, *c, kernel, &mut plain);
                dists_to_set_min_weighted(&s, &ids, *c, 0.0, kernel, &mut weighted);
            }
            for (a, b) in plain.iter().zip(&weighted) {
                assert_eq!(a.to_bits(), b.to_bits(), "{kernel:?}");
            }
            for q in [PointId(0), PointId(100), PointId(316)] {
                let p = nearest_center(&s, &centers, q, kernel).unwrap();
                let w = nearest_center_weighted(&s, &centers, &zeros, q, kernel).unwrap();
                assert_eq!(p.0, w.0, "{kernel:?}");
                assert_eq!(p.1.to_bits(), w.1.to_bits(), "{kernel:?}");
            }
        }
    }

    #[test]
    fn weighted_nearest_subtracts_weight_and_can_flip_winner() {
        // Two centers at x = ±1; the origin ties toward index 0 when
        // unweighted, but a weight on center 1 pulls the query into its
        // Apollonius cell.
        let pts = vec![
            Point::new(vec![1.0, 0.0]),
            Point::new(vec![-1.0, 0.0]),
            Point::new(vec![0.0, 0.0]),
        ];
        let s = PointStore::from_points(&pts);
        let centers = [PointId(0), PointId(1)];
        for kernel in Kernel::ALL {
            let (idx, d) =
                nearest_center_weighted(&s, &centers, &[0.0, 0.5], PointId(2), kernel).unwrap();
            assert_eq!(idx, 1, "{kernel:?}");
            assert!((d - 0.5).abs() < 1e-12, "{kernel:?}");
            // Equal weights keep the tie on the lowest index.
            let (idx, d) =
                nearest_center_weighted(&s, &centers, &[0.25, 0.25], PointId(2), kernel).unwrap();
            assert_eq!(idx, 0, "{kernel:?}");
            assert!((d - 0.75).abs() < 1e-12, "{kernel:?}");
        }
        assert!(nearest_center_weighted(&s, &[], &[], PointId(2), Kernel::Scalar).is_none());
    }

    #[test]
    fn weighted_fused_sweeps_match_per_center_and_per_query_reference() {
        let s = store(53, 203, 6);
        let ids = s.ids();
        let centers: Vec<PointId> = (0..6).map(|i| PointId(i * 31)).collect();
        let weights: Vec<f64> = (0..6).map(|i| i as f64 * 0.17).collect();
        for kernel in Kernel::ALL {
            let mut reference = vec![f64::INFINITY; ids.len()];
            for (c, w) in centers.iter().zip(&weights) {
                dists_to_set_min_weighted(&s, &ids, *c, *w, kernel, &mut reference);
            }
            let mut fused = vec![f64::INFINITY; ids.len()];
            dists_to_centers_min_weighted(&s, &ids, &centers, &weights, kernel, &mut fused);
            for (a, b) in reference.iter().zip(&fused) {
                assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()), "{kernel:?}");
            }

            let mut each = vec![(0usize, 0.0f64); ids.len()];
            nearest_center_each_weighted(&s, &ids, &centers, &weights, kernel, &mut each);
            for (q, got) in ids.iter().zip(&each) {
                let want = nearest_center_weighted(&s, &centers, &weights, *q, kernel).unwrap();
                assert_eq!(got.0, want.0, "{kernel:?}");
                assert!(
                    (got.1 - want.1).abs() < 1e-9 * (1.0 + want.1.abs()),
                    "{kernel:?}"
                );
            }
        }
    }

    #[test]
    fn par_weighted_sweeps_match_sequential_bitwise() {
        let s = store(61, 2 * PAR_MIN_POINTS + 17, 7);
        let ids = s.ids();
        let centers: Vec<PointId> = (0..9).map(|i| PointId(i * 117)).collect();
        let weights: Vec<f64> = (0..9).map(|i| i as f64 * 0.09).collect();
        let pool = ukc_pool::Pool::new(3);
        let exec = Exec::pooled(&pool, 3);
        for kernel in Kernel::ALL {
            let mut seq = vec![f64::INFINITY; ids.len()];
            let mut par = vec![f64::INFINITY; ids.len()];
            for (c, w) in centers.iter().zip(&weights) {
                dists_to_set_min_weighted(&s, &ids, *c, *w, kernel, &mut seq);
                par_dists_to_set_min_weighted(&s, &ids, *c, *w, kernel, exec, &mut par);
            }
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.to_bits(), b.to_bits(), "{kernel:?}");
            }

            let mut seq = vec![f64::INFINITY; ids.len()];
            dists_to_centers_min_weighted(&s, &ids, &centers, &weights, kernel, &mut seq);
            let mut par = vec![f64::INFINITY; ids.len()];
            par_dists_to_centers_min_weighted(&s, &ids, &centers, &weights, kernel, exec, &mut par);
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.to_bits(), b.to_bits(), "{kernel:?}");
            }

            let mut seq = vec![(0usize, 0.0f64); ids.len()];
            nearest_center_each_weighted(&s, &ids, &centers, &weights, kernel, &mut seq);
            let mut par = vec![(0usize, 0.0f64); ids.len()];
            par_nearest_center_each_weighted(&s, &ids, &centers, &weights, kernel, exec, &mut par);
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.0, b.0, "{kernel:?}");
                assert_eq!(a.1.to_bits(), b.1.to_bits(), "{kernel:?}");
            }
        }
    }

    #[test]
    fn weighted_tiled_pad_columns_never_win() {
        // 5 centers → one padded panel slot; crank every real weight high
        // so a buggy pad column (weight 0, distance +∞) would be the only
        // survivor if the +∞ guard failed.
        let s = store(71, 40, 5);
        let ids = s.ids();
        let centers: Vec<PointId> = (0..5).map(PointId).collect();
        let weights = vec![1e6; 5];
        let mut each = vec![(0usize, 0.0f64); ids.len()];
        let v = tiled_view_f64(&s);
        let panels = pack_panels(&v, &centers);
        let wpad = pad_weights(&weights, &panels);
        assert_eq!(wpad.len(), 8);
        assert!(wpad[5..].iter().all(|w| *w == 0.0));
        nearest_each_weighted_tiled(&v, &ids, &panels, &wpad, &mut each);
        for (i, (idx, d)) in each.iter().enumerate() {
            assert!(*idx < 5, "point {i} picked a pad column");
            assert!(d.is_finite() && *d < 0.0, "point {i}");
        }
    }
}
