//! Batched Euclidean distance kernels over a [`PointStore`].
//!
//! Two interchangeable kernels compute every routine:
//!
//! * [`Kernel::Scalar`] — per-pair difference-and-square with sequential
//!   summation, the exact arithmetic of [`crate::Point::dist`]. Results
//!   are bit-identical to the pointwise [`crate::Euclidean`] metric; this
//!   is the reference path the golden-equivalence suites pin against.
//! * [`Kernel::Blocked`] — the `‖a−b‖² = ‖a‖² + ‖b‖² − 2a·b` form over
//!   8-wide unrolled dot products, using the store's cached squared
//!   norms. Faster (independent accumulators expose instruction-level
//!   parallelism and vectorize), but the different f64 summation order
//!   perturbs results by a few ulps; callers needing bit-stability pick
//!   `Scalar`.
//!
//! Both kernels perform — and [`DistCounter`]-instrumented callers count —
//! exactly one distance evaluation per point-pair, so switching kernels
//! never changes instrumentation.

use crate::store::{PointId, PointStore};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use ukc_pool::Exec;

/// Rows per parallel chunk. A pure constant — chunk boundaries must
/// depend only on the input size, never on the worker count, so the
/// ordered chunk reductions below are bit-identical for every lane count
/// (the execution-layer determinism contract).
pub const PAR_CHUNK: usize = 2048;

/// Minimum row count before a sweep is worth handing to the pool (below
/// this, chunk-dispatch overhead exceeds the sweep itself). Also a pure
/// function of input size, for the same determinism reason.
pub const PAR_MIN_POINTS: usize = 4096;

/// Which distance kernel evaluates batched routines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Per-pair difference-and-square, sequential summation over
    /// dimensions: bit-identical to [`crate::Point::dist`].
    Scalar,
    /// Norm-factorized form over 8-wide unrolled dot products; fastest,
    /// with last-ulp deviations from the scalar path.
    #[default]
    Blocked,
}

impl Kernel {
    /// Short name for reports and config keys.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Blocked => "blocked",
        }
    }
}

/// How many cache-line-padded cells a [`DistCounter`] spreads its adds
/// over.
const COUNTER_SHARDS: usize = 8;

/// One counter cell on its own cache line, so concurrent adds from
/// different lanes do not false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
struct CounterCell(AtomicU64);

/// Monotone shard-id source for [`thread_shard`].
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's counter shard, assigned round-robin on first use.
    static THREAD_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The calling thread's shard index (stable for the thread's lifetime).
fn thread_shard() -> usize {
    THREAD_SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
        s.set(v);
        v
    })
}

/// A shared, *sharded* distance-evaluation counter.
///
/// The kernels' callers bump it by the number of point-pairs evaluated;
/// `ukc-core` threads one through every solve so [`Kernel::Scalar`] and
/// [`Kernel::Blocked`] report identical `distance_evals`. Internally the
/// count is spread over cache-line-padded cells indexed by a per-thread
/// shard, so the parallel sweeps (and per-pair counting from many pool
/// lanes at once) never contend on one cache line; [`DistCounter::count`]
/// sums the cells, so per-stage totals stay **exact** — sharding changes
/// where an add lands, never whether it is counted.
#[derive(Debug)]
pub struct DistCounter {
    cells: [CounterCell; COUNTER_SHARDS],
}

impl Default for DistCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl DistCounter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Self {
            cells: std::array::from_fn(|_| CounterCell::default()),
        }
    }

    /// Adds `n` evaluations (to the calling thread's shard).
    #[inline]
    pub fn add(&self, n: u64) {
        self.cells[thread_shard()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// The evaluations so far (sum over all shards).
    pub fn count(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }

    /// Evaluations since a previous [`DistCounter::count`].
    pub fn since(&self, since: u64) -> u64 {
        self.count().saturating_sub(since)
    }
}

/// Squared distance by sequential difference-and-square — the exact
/// arithmetic of [`crate::Point::dist_sq`].
///
/// # Panics
/// Debug-asserts equal lengths; release builds truncate to the shorter.
#[inline]
pub fn dist_sq_scalar(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// One 8-lane block: products summed by the fixed reduction tree.
#[inline(always)]
fn dot8(xs: &[f64; 8], ys: &[f64; 8]) -> f64 {
    ((xs[0] * ys[0] + xs[4] * ys[4]) + (xs[1] * ys[1] + xs[5] * ys[5]))
        + ((xs[2] * ys[2] + xs[6] * ys[6]) + (xs[3] * ys[3] + xs[7] * ys[7]))
}

/// Dot product with eight independent accumulators (8-wide unroll).
///
/// The independent partial sums break the sequential-add dependency
/// chain, which is what lets the compiler vectorize and the CPU overlap
/// the multiply-adds.
#[inline]
pub fn dot_blocked(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    // The d == 8 case (one exact block) is the kernel-comparison sweet
    // spot; dispatching to the fixed-size form skips all iterator and
    // remainder machinery. The summation tree is identical to the general
    // path's, so both produce the same value for the same input.
    if let (Ok(xs), Ok(ys)) = (<&[f64; 8]>::try_from(a), <&[f64; 8]>::try_from(b)) {
        return dot8(xs, ys);
    }
    let n = a.len().min(b.len());
    let mut ca = a[..n].chunks_exact(8);
    let mut cb = b[..n].chunks_exact(8);
    let mut acc = [0.0f64; 8];
    for (xs, ys) in (&mut ca).zip(&mut cb) {
        // Fixed-size views let the compiler drop every bounds check and
        // keep the 8 lanes in vector registers.
        let xs: &[f64; 8] = xs.try_into().expect("chunks_exact(8)");
        let ys: &[f64; 8] = ys.try_into().expect("chunks_exact(8)");
        for lane in 0..8 {
            acc[lane] += xs[lane] * ys[lane];
        }
    }
    let mut tail = 0.0;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    (((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]))) + tail
}

/// Squared distance via `‖a‖² + ‖b‖² − 2a·b` with precomputed norms,
/// clamped at zero (cancellation can produce a tiny negative).
#[inline]
pub fn dist_sq_blocked(a: &[f64], a_norm_sq: f64, b: &[f64], b_norm_sq: f64) -> f64 {
    ((a_norm_sq + b_norm_sq) - 2.0 * dot_blocked(a, b)).max(0.0)
}

#[inline]
fn pair_dist(
    store: &PointStore,
    a: PointId,
    q_coords: &[f64],
    q_norm_sq: f64,
    kernel: Kernel,
) -> f64 {
    match kernel {
        Kernel::Scalar => dist_sq_scalar(store.coords(a), q_coords).sqrt(),
        Kernel::Blocked => {
            dist_sq_blocked(store.coords(a), store.norm_sq(a), q_coords, q_norm_sq).sqrt()
        }
    }
}

/// Fills `out[i] = d(points[i], q)`.
///
/// # Panics
/// Panics when `out` is shorter than `points`.
pub fn dists_to_one(
    store: &PointStore,
    points: &[PointId],
    q: PointId,
    kernel: Kernel,
    out: &mut [f64],
) {
    assert!(out.len() >= points.len(), "output buffer too small");
    let qc = store.coords(q);
    let qn = store.norm_sq(q);
    for (p, o) in points.iter().zip(out.iter_mut()) {
        *o = pair_dist(store, *p, qc, qn, kernel);
    }
}

/// Tightens a running minimum-distance array against a new center:
/// `min_dist[i] = min(min_dist[i], d(points[i], center))` — the exact
/// inner loop of Gonzalez's farthest-point sweep.
///
/// # Panics
/// Panics when `min_dist` is shorter than `points`.
pub fn dists_to_set_min(
    store: &PointStore,
    points: &[PointId],
    center: PointId,
    kernel: Kernel,
    min_dist: &mut [f64],
) {
    assert!(min_dist.len() >= points.len(), "min-dist buffer too small");
    let cc = store.coords(center);
    let cn = store.norm_sq(center);
    match kernel {
        Kernel::Scalar => {
            for (p, d) in points.iter().zip(min_dist.iter_mut()) {
                let nd = dist_sq_scalar(store.coords(*p), cc).sqrt();
                if nd < *d {
                    *d = nd;
                }
            }
        }
        Kernel::Blocked => {
            // Compare in squared space and take the square root only on an
            // actual improvement: in a min-update sweep most pairs do not
            // tighten the minimum, so most `sqrt`s are skipped. (sqrt is
            // monotone, so the comparison is equivalent up to rounding —
            // within the blocked kernel's tolerance contract.)
            for (p, d) in points.iter().zip(min_dist.iter_mut()) {
                let nd_sq = dist_sq_blocked(store.coords(*p), store.norm_sq(*p), cc, cn);
                if nd_sq < *d * *d {
                    *d = nd_sq.sqrt();
                }
            }
        }
    }
}

/// Index (into `centers`) and distance of the center nearest to `q`,
/// ties broken toward the lower index; `None` for an empty center set.
pub fn nearest_center(
    store: &PointStore,
    centers: &[PointId],
    q: PointId,
    kernel: Kernel,
) -> Option<(usize, f64)> {
    let qc = store.coords(q);
    let qn = store.norm_sq(q);
    match kernel {
        Kernel::Scalar => {
            let mut best: Option<(usize, f64)> = None;
            for (i, c) in centers.iter().enumerate() {
                let d = dist_sq_scalar(store.coords(*c), qc).sqrt();
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((i, d));
                }
            }
            best
        }
        Kernel::Blocked => {
            // Squared-space argmin, one sqrt at the end.
            let mut best: Option<(usize, f64)> = None;
            for (i, c) in centers.iter().enumerate() {
                let d_sq = dist_sq_blocked(store.coords(*c), store.norm_sq(*c), qc, qn);
                if best.is_none_or(|(_, bd)| d_sq < bd) {
                    best = Some((i, d_sq));
                }
            }
            best.map(|(i, d_sq)| (i, d_sq.sqrt()))
        }
    }
}

/// Parallel [`dists_to_one`]: splits `points` into [`PAR_CHUNK`]-row
/// blocks and fills each block's output slice on a pool lane. The fill
/// is elementwise (every `out[i]` depends only on pair `i`), so the
/// result is bit-identical to the sequential kernel for every [`Exec`].
///
/// # Panics
/// Panics when `out` is shorter than `points`.
pub fn par_dists_to_one(
    store: &PointStore,
    points: &[PointId],
    q: PointId,
    kernel: Kernel,
    exec: Exec<'_>,
    out: &mut [f64],
) {
    assert!(out.len() >= points.len(), "output buffer too small");
    if !exec.is_parallel() || points.len() < PAR_MIN_POINTS {
        return dists_to_one(store, points, q, kernel, out);
    }
    ukc_pool::for_each_slice(exec, &mut out[..points.len()], PAR_CHUNK, |start, slice| {
        dists_to_one(store, &points[start..start + slice.len()], q, kernel, slice);
    });
}

/// Parallel min-update sweep ([`dists_to_set_min`]): block-parallel over
/// [`PAR_CHUNK`]-row blocks. Elementwise like [`par_dists_to_one`], so
/// bit-identical across every [`Exec`] — this is the Gonzalez inner loop,
/// and the sweep where intra-solve parallelism pays the most.
///
/// # Panics
/// Panics when `min_dist` is shorter than `points`.
pub fn par_dists_to_set_min(
    store: &PointStore,
    points: &[PointId],
    center: PointId,
    kernel: Kernel,
    exec: Exec<'_>,
    min_dist: &mut [f64],
) {
    assert!(min_dist.len() >= points.len(), "min-dist buffer too small");
    if !exec.is_parallel() || points.len() < PAR_MIN_POINTS {
        return dists_to_set_min(store, points, center, kernel, min_dist);
    }
    ukc_pool::for_each_slice(
        exec,
        &mut min_dist[..points.len()],
        PAR_CHUNK,
        |start, slice| {
            dists_to_set_min(
                store,
                &points[start..start + slice.len()],
                center,
                kernel,
                slice,
            );
        },
    );
}

/// Parallel [`nearest_center`] over a large center set: per-chunk argmins
/// are computed independently and folded **in chunk-index order** with a
/// strict `<`, which preserves the sequential first-wins tie-breaking, so
/// the chosen index is independent of the lane count.
///
/// Chunking engages purely by size (`centers.len() >= PAR_MIN_POINTS`),
/// never by [`Exec`]: a sequential `Exec` folds the *same* chunks in the
/// same order, so `threads = 1` and `threads = N` agree bit for bit even
/// in the blocked kernel's rounding corners.
pub fn par_nearest_center(
    store: &PointStore,
    centers: &[PointId],
    q: PointId,
    kernel: Kernel,
    exec: Exec<'_>,
) -> Option<(usize, f64)> {
    if centers.len() < PAR_MIN_POINTS {
        return nearest_center(store, centers, q, kernel);
    }
    let partials = ukc_pool::map_chunks(exec, centers.len(), PAR_CHUNK, |r| {
        nearest_center(store, &centers[r.clone()], q, kernel).map(|(i, d)| (i + r.start, d))
    });
    let mut best: Option<(usize, f64)> = None;
    for p in partials.into_iter().flatten() {
        if best.is_none_or(|(_, bd)| p.1 < bd) {
            best = Some(p);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;

    fn store(seed: u64, n: usize, d: usize) -> PointStore {
        let mut s = seed | 1;
        let mut rnd = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::new((0..d).map(|_| rnd() * 10.0 - 5.0).collect()))
            .collect();
        PointStore::from_points(&pts)
    }

    #[test]
    fn dot_blocked_matches_sequential() {
        for d in [1usize, 7, 8, 9, 24, 31] {
            let s = store(d as u64, 2, d);
            let a = s.coords(PointId(0));
            let b = s.coords(PointId(1));
            let sequential: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            assert!((dot_blocked(a, b) - sequential).abs() < 1e-9 * (1.0 + sequential.abs()));
        }
    }

    #[test]
    fn kernels_agree_on_batched_routines() {
        let s = store(11, 20, 9);
        let ids = s.ids();
        for q in [PointId(0), PointId(7), PointId(19)] {
            let mut scalar = vec![0.0; ids.len()];
            let mut blocked = vec![0.0; ids.len()];
            dists_to_one(&s, &ids, q, Kernel::Scalar, &mut scalar);
            dists_to_one(&s, &ids, q, Kernel::Blocked, &mut blocked);
            for (a, b) in scalar.iter().zip(blocked.iter()) {
                assert!((a - b).abs() < 1e-9 * (1.0 + a));
            }
        }
    }

    #[test]
    fn dists_to_set_min_is_running_minimum() {
        let s = store(2, 15, 3);
        let ids = s.ids();
        let mut min_dist = vec![f64::INFINITY; ids.len()];
        for c in [PointId(3), PointId(9)] {
            dists_to_set_min(&s, &ids, c, Kernel::Scalar, &mut min_dist);
        }
        for (i, id) in ids.iter().enumerate() {
            let d3 = dist_sq_scalar(s.coords(*id), s.coords(PointId(3))).sqrt();
            let d9 = dist_sq_scalar(s.coords(*id), s.coords(PointId(9))).sqrt();
            assert_eq!(min_dist[i], d3.min(d9), "point {i}");
        }
    }

    #[test]
    fn nearest_center_ties_prefer_first() {
        let pts = vec![
            Point::new(vec![1.0, 0.0]),
            Point::new(vec![-1.0, 0.0]),
            Point::new(vec![0.0, 0.0]),
        ];
        let s = PointStore::from_points(&pts);
        let centers = [PointId(0), PointId(1)];
        let (idx, d) = nearest_center(&s, &centers, PointId(2), Kernel::Blocked).unwrap();
        assert_eq!(idx, 0);
        assert_eq!(d, 1.0);
        assert!(nearest_center(&s, &[], PointId(2), Kernel::Scalar).is_none());
    }

    #[test]
    fn counter_accumulates() {
        let c = DistCounter::new();
        c.add(3);
        c.add(4);
        assert_eq!(c.count(), 7);
        assert_eq!(c.since(5), 2);
        assert_eq!(c.since(10), 0);
    }

    #[test]
    fn counter_sums_adds_from_many_threads_exactly() {
        let c = DistCounter::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(c.count(), 4000);
    }

    #[test]
    fn par_fills_match_sequential_bitwise() {
        let s = store(21, 2 * PAR_MIN_POINTS + 37, 5);
        let ids = s.ids();
        let pool = ukc_pool::Pool::new(3);
        let exec = Exec::pooled(&pool, 3);
        for kernel in [Kernel::Scalar, Kernel::Blocked] {
            let mut seq = vec![0.0; ids.len()];
            dists_to_one(&s, &ids, PointId(5), kernel, &mut seq);
            let mut par = vec![0.0; ids.len()];
            par_dists_to_one(&s, &ids, PointId(5), kernel, exec, &mut par);
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.to_bits(), b.to_bits(), "{kernel:?}");
            }

            let mut seq = vec![f64::INFINITY; ids.len()];
            let mut par = vec![f64::INFINITY; ids.len()];
            for c in [PointId(0), PointId(999), PointId(4321)] {
                dists_to_set_min(&s, &ids, c, kernel, &mut seq);
                par_dists_to_set_min(&s, &ids, c, kernel, exec, &mut par);
            }
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.to_bits(), b.to_bits(), "{kernel:?}");
            }
        }
    }

    #[test]
    fn par_nearest_center_is_lane_count_independent() {
        let s = store(4, PAR_MIN_POINTS + 123, 3);
        let centers = s.ids();
        let pool = ukc_pool::Pool::new(4);
        for kernel in [Kernel::Scalar, Kernel::Blocked] {
            for q in [PointId(0), PointId(17), PointId(4000)] {
                let seq = par_nearest_center(&s, &centers, q, kernel, Exec::sequential());
                let par = par_nearest_center(&s, &centers, q, kernel, Exec::pooled(&pool, 4));
                let (si, sd) = seq.expect("non-empty centers");
                let (pi, pd) = par.expect("non-empty centers");
                assert_eq!(si, pi, "{kernel:?}");
                assert_eq!(sd.to_bits(), pd.to_bits(), "{kernel:?}");
            }
        }
        assert!(
            par_nearest_center(&s, &[], PointId(0), Kernel::Scalar, Exec::sequential()).is_none()
        );
    }
}
