//! Explicit finite metric spaces given by a distance matrix.

use crate::validate::{check_metric_axioms, MetricViolation};
use crate::Metric;
use std::fmt;

/// Errors produced while constructing a [`FiniteMetric`].
#[derive(Clone, Debug, PartialEq)]
pub enum FiniteMetricError {
    /// The matrix is empty or not square.
    BadShape {
        /// Number of rows supplied.
        rows: usize,
        /// Length of the offending row (or expected length).
        cols: usize,
    },
    /// The matrix violates a metric axiom.
    NotAMetric(MetricViolation),
}

impl fmt::Display for FiniteMetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FiniteMetricError::BadShape { rows, cols } => {
                write!(
                    f,
                    "distance matrix must be square and non-empty, got {rows}x{cols}"
                )
            }
            FiniteMetricError::NotAMetric(v) => write!(f, "matrix is not a metric: {v:?}"),
        }
    }
}

impl std::error::Error for FiniteMetricError {}

/// A finite metric space over point ids `0..n`, stored as a flat row-major
/// `n × n` distance matrix.
///
/// This is the "general metric space" of the paper's Table 1 row 9 and
/// Theorems 2.6/2.7: points are opaque ids and the only available operation
/// is a distance lookup. Construct one with [`FiniteMetric::from_matrix`]
/// (which validates the metric axioms) or derive one from a
/// [`WeightedGraph`](crate::WeightedGraph) shortest-path closure.
#[derive(Clone, Debug, PartialEq)]
pub struct FiniteMetric {
    n: usize,
    d: Box<[f64]>,
}

impl FiniteMetric {
    /// Builds a finite metric from a full square matrix, checking the metric
    /// axioms with absolute tolerance `tol`.
    pub fn from_matrix(matrix: Vec<Vec<f64>>, tol: f64) -> Result<Self, FiniteMetricError> {
        let n = matrix.len();
        if n == 0 {
            return Err(FiniteMetricError::BadShape { rows: 0, cols: 0 });
        }
        for row in &matrix {
            if row.len() != n {
                return Err(FiniteMetricError::BadShape {
                    rows: n,
                    cols: row.len(),
                });
            }
        }
        let mut d = Vec::with_capacity(n * n);
        for row in &matrix {
            d.extend_from_slice(row);
        }
        let fm = Self {
            n,
            d: d.into_boxed_slice(),
        };
        let ids: Vec<usize> = (0..n).collect();
        check_metric_axioms(&fm, &ids, tol).map_err(FiniteMetricError::NotAMetric)?;
        Ok(fm)
    }

    /// Builds a finite metric without validating the axioms.
    ///
    /// Intended for matrices that are metrics by construction (e.g. the
    /// shortest-path closure of a connected graph, or pairwise distances of
    /// embedded points). The caller is responsible for the axioms; a
    /// non-metric matrix voids every approximation guarantee downstream.
    ///
    /// # Panics
    /// Panics if the matrix is empty or not square.
    pub fn from_matrix_unchecked(matrix: Vec<Vec<f64>>) -> Self {
        let n = matrix.len();
        assert!(n > 0, "empty distance matrix");
        let mut d = Vec::with_capacity(n * n);
        for row in &matrix {
            assert_eq!(row.len(), n, "distance matrix must be square");
            d.extend_from_slice(row);
        }
        Self {
            n,
            d: d.into_boxed_slice(),
        }
    }

    /// Builds the finite metric induced by embedding `points` into the metric
    /// `m` (the pairwise-distance matrix). Always a metric when `m` is.
    pub fn from_points<P, M: Metric<P>>(points: &[P], m: &M) -> Self {
        let n = points.len();
        assert!(n > 0, "empty point set");
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let dij = m.dist(&points[i], &points[j]);
                d[i * n + j] = dij;
                d[j * n + i] = dij;
            }
        }
        Self {
            n,
            d: d.into_boxed_slice(),
        }
    }

    /// Number of points in the space.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the space has no points (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// All point ids, `0..n`; the natural candidate pool for discrete
    /// k-center on this space.
    pub fn ids(&self) -> Vec<usize> {
        (0..self.n).collect()
    }

    /// The largest pairwise distance (the diameter of the space).
    pub fn diameter(&self) -> f64 {
        self.d.iter().copied().fold(0.0, f64::max)
    }
}

impl Metric<usize> for FiniteMetric {
    #[inline]
    fn dist(&self, a: &usize, b: &usize) -> f64 {
        assert!(*a < self.n && *b < self.n, "point id out of range");
        self.d[a * self.n + b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Euclidean, Point};

    fn path_metric() -> Vec<Vec<f64>> {
        // Path 0 - 1 - 2 with unit edges.
        vec![
            vec![0.0, 1.0, 2.0],
            vec![1.0, 0.0, 1.0],
            vec![2.0, 1.0, 0.0],
        ]
    }

    #[test]
    fn from_matrix_accepts_valid_metric() {
        let fm = FiniteMetric::from_matrix(path_metric(), 1e-9).unwrap();
        assert_eq!(fm.len(), 3);
        assert_eq!(fm.dist(&0, &2), 2.0);
        assert_eq!(fm.diameter(), 2.0);
        assert_eq!(fm.ids(), vec![0, 1, 2]);
    }

    #[test]
    fn from_matrix_rejects_triangle_violation() {
        let mut m = path_metric();
        m[0][2] = 5.0;
        m[2][0] = 5.0;
        let err = FiniteMetric::from_matrix(m, 1e-9).unwrap_err();
        assert!(matches!(err, FiniteMetricError::NotAMetric(_)));
    }

    #[test]
    fn from_matrix_rejects_asymmetry() {
        let mut m = path_metric();
        m[0][1] = 1.5;
        let err = FiniteMetric::from_matrix(m, 1e-9).unwrap_err();
        assert!(matches!(err, FiniteMetricError::NotAMetric(_)));
    }

    #[test]
    fn from_matrix_rejects_ragged() {
        let m = vec![vec![0.0, 1.0], vec![1.0]];
        let err = FiniteMetric::from_matrix(m, 1e-9).unwrap_err();
        assert!(matches!(err, FiniteMetricError::BadShape { .. }));
    }

    #[test]
    fn from_points_matches_source_metric() {
        let pts = vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![3.0, 4.0]),
            Point::new(vec![6.0, 8.0]),
        ];
        let fm = FiniteMetric::from_points(&pts, &Euclidean);
        assert!((fm.dist(&0, &1) - 5.0).abs() < 1e-12);
        assert!((fm.dist(&1, &2) - 5.0).abs() < 1e-12);
        assert!((fm.dist(&0, &2) - 10.0).abs() < 1e-12);
        // And it passes the axiom checker.
        let ids = fm.ids();
        crate::validate::check_metric_axioms(&fm, &ids, 1e-9).unwrap();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_id_panics() {
        let fm = FiniteMetric::from_matrix(path_metric(), 1e-9).unwrap();
        let _ = fm.dist(&0, &7);
    }
}
