//! Minimal binary payload codec.
//!
//! Frame payloads (and snapshot bodies built by the serving layer) are
//! encoded with this fixed-width little-endian codec rather than JSON:
//! floats travel as IEEE bit patterns, so a recovered stream summary is
//! *bit-identical* to the pre-crash state by construction — no text
//! round-trip to reason about.

/// An append-only byte encoder.
#[derive(Debug, Default)]
pub struct Encoder {
    bytes: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.bytes.push(v);
        self
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends an `f64` by IEEE bit pattern (exact round trip).
    pub fn put_f64(&mut self, v: f64) -> &mut Self {
        self.put_u64(v.to_bits())
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.put_u64(v.len() as u64);
        self.bytes.extend_from_slice(v);
        self
    }

    /// The encoded payload.
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }
}

/// A bounds-checked decoder over one payload. Every read returns `None`
/// past the end instead of panicking, so a malformed payload surfaces as
/// a typed decode failure in the caller, never a crash.
#[derive(Debug)]
pub struct Decoder<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Decoder { bytes, at: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.at == self.bytes.len()
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        let v = *self.bytes.get(self.at)?;
        self.at += 1;
        Some(v)
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        let end = self.at.checked_add(8)?;
        let v = u64::from_le_bytes(self.bytes.get(self.at..end)?.try_into().ok()?);
        self.at = end;
        Some(v)
    }

    /// Reads an `f64` from its IEEE bit pattern.
    pub fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = usize::try_from(self.u64()?).ok()?;
        let end = self.at.checked_add(len)?;
        let v = self.bytes.get(self.at..end)?;
        self.at = end;
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_type() {
        let mut e = Encoder::new();
        e.put_u8(7)
            .put_u64(u64::MAX)
            .put_f64(-0.0)
            .put_f64(f64::MIN_POSITIVE)
            .put_bytes(b"payload")
            .put_bytes(b"");
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.u8(), Some(7));
        assert_eq!(d.u64(), Some(u64::MAX));
        assert_eq!(d.f64().map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert_eq!(d.f64(), Some(f64::MIN_POSITIVE));
        assert_eq!(d.bytes(), Some(&b"payload"[..]));
        assert_eq!(d.bytes(), Some(&b""[..]));
        assert!(d.is_exhausted());
    }

    #[test]
    fn truncated_payloads_decode_to_none_not_panics() {
        let mut e = Encoder::new();
        e.put_u64(1).put_bytes(b"abcdef");
        let bytes = e.finish();
        for cut in 0..bytes.len() {
            let mut d = Decoder::new(&bytes[..cut]);
            // Either read may fail, but nothing panics and nothing reads
            // past the end.
            let _ = d.u64();
            let _ = d.bytes();
            assert!(d.at <= cut);
        }
        // A declared length larger than the remaining bytes is a None.
        let mut e = Encoder::new();
        e.put_u64(1 << 40);
        let bytes = e.finish();
        assert_eq!(Decoder::new(&bytes).bytes(), None);
    }
}
