//! CRC-framed append-only record files.
//!
//! Every durable file in this crate — instance segments and the stream
//! WAL — is a sequence of frames:
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! ```
//!
//! The framing gives the recovery path exactly two failure modes, with
//! deliberately different handling:
//!
//! * **Torn tail** — the process died mid-append, so the *last* frame is
//!   incomplete (short header, short payload, or a payload that reaches
//!   EOF with a bad checksum). This is the expected crash artifact: the
//!   frame was never acknowledged, so it is silently dropped and the
//!   file is truncated back to the last good frame on reopen.
//! * **Corruption** — a frame *before* the tail fails its checksum, or a
//!   frame length is absurd while bytes remain after it. Acknowledged
//!   data has been damaged; recovery refuses to guess and surfaces
//!   [`StoreError::CorruptSegment`] with the offending path and offset.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::StoreError;

/// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 == 1 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// Frame header size: length + checksum.
pub const FRAME_HEADER: u64 = 8;

/// A decoded file: the payloads of every intact frame plus tail facts.
#[derive(Debug)]
pub struct ReadFrames {
    /// Payloads in file order.
    pub frames: Vec<Vec<u8>>,
    /// Bytes occupied by intact frames (the truncation point when a torn
    /// tail follows).
    pub valid_bytes: u64,
    /// Whether a torn tail was dropped.
    pub torn_tail: bool,
}

pub(crate) fn io_err(path: &Path, op: &'static str, source: std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        op,
        source,
    }
}

/// Reads every frame of `path` (which must exist), applying the torn-tail
/// policy from the module docs.
pub fn read_frames(path: &Path) -> Result<ReadFrames, StoreError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| io_err(path, "read", e))?;
    let mut frames = Vec::new();
    let mut at = 0usize;
    loop {
        let remaining = bytes.len() - at;
        if remaining == 0 {
            return Ok(ReadFrames {
                frames,
                valid_bytes: at as u64,
                torn_tail: false,
            });
        }
        if remaining < FRAME_HEADER as usize {
            // Short header: only a torn append can leave one.
            return Ok(ReadFrames {
                frames,
                valid_bytes: at as u64,
                torn_tail: true,
            });
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
        let body_start = at + FRAME_HEADER as usize;
        if bytes.len() - body_start < len {
            // Short payload: the declared length extends past EOF. A torn
            // append — or a garbage length field in the final header;
            // either way nothing after this point was acknowledged intact.
            return Ok(ReadFrames {
                frames,
                valid_bytes: at as u64,
                torn_tail: true,
            });
        }
        let payload = &bytes[body_start..body_start + len];
        if crc32(payload) != crc {
            if body_start + len == bytes.len() {
                // Bad checksum on the frame that ends exactly at EOF: the
                // tail was torn mid-payload after the header landed.
                return Ok(ReadFrames {
                    frames,
                    valid_bytes: at as u64,
                    torn_tail: true,
                });
            }
            // Bad checksum with acknowledged frames after it: corruption.
            return Err(StoreError::CorruptSegment {
                path: path.to_path_buf(),
                offset: at as u64,
                detail: "frame checksum mismatch before end of file".into(),
            });
        }
        frames.push(payload.to_vec());
        at = body_start + len;
    }
}

/// An append handle on a framed file. Created by [`FrameWriter::open`],
/// which truncates any torn tail so new frames never land after garbage.
#[derive(Debug)]
pub struct FrameWriter {
    file: File,
    path: PathBuf,
    bytes: u64,
}

impl FrameWriter {
    /// Opens (creating if absent) `path` for appending, first truncating
    /// a torn tail back to the last intact frame.
    pub fn open(path: &Path) -> Result<(Self, ReadFrames), StoreError> {
        if !path.exists() {
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| io_err(path, "create", e))?;
            return Ok((
                FrameWriter {
                    file,
                    path: path.to_path_buf(),
                    bytes: 0,
                },
                ReadFrames {
                    frames: Vec::new(),
                    valid_bytes: 0,
                    torn_tail: false,
                },
            ));
        }
        let read = read_frames(path)?;
        if read.torn_tail {
            let file = OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| io_err(path, "open", e))?;
            file.set_len(read.valid_bytes)
                .map_err(|e| io_err(path, "truncate", e))?;
            file.sync_all().map_err(|e| io_err(path, "fsync", e))?;
        }
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| io_err(path, "open", e))?;
        Ok((
            FrameWriter {
                file,
                path: path.to_path_buf(),
                bytes: read.valid_bytes,
            },
            read,
        ))
    }

    /// Appends one frame (no sync — call [`FrameWriter::sync`] before
    /// acknowledging).
    pub fn append(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        let mut frame = Vec::with_capacity(FRAME_HEADER as usize + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file
            .write_all(&frame)
            .map_err(|e| io_err(&self.path, "append", e))?;
        self.bytes += frame.len() as u64;
        Ok(())
    }

    /// Forces appended frames to stable storage (fsync).
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file
            .sync_all()
            .map_err(|e| io_err(&self.path, "fsync", e))
    }

    /// Bytes of intact frames written or recovered so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The underlying path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ukc-frame-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_a686);
    }

    #[test]
    fn append_and_read_round_trip() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("log");
        let (mut w, read) = FrameWriter::open(&path).unwrap();
        assert!(read.frames.is_empty());
        w.append(b"alpha").unwrap();
        w.append(b"").unwrap();
        w.append(&[0xff; 1000]).unwrap();
        w.sync().unwrap();
        let read = read_frames(&path).unwrap();
        assert!(!read.torn_tail);
        assert_eq!(read.frames.len(), 3);
        assert_eq!(read.frames[0], b"alpha");
        assert_eq!(read.frames[1], b"");
        assert_eq!(read.frames[2], vec![0xff; 1000]);
        assert_eq!(read.valid_bytes, w.bytes());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated_on_reopen() {
        let dir = temp_dir("torn");
        let path = dir.join("log");
        let (mut w, _) = FrameWriter::open(&path).unwrap();
        w.append(b"kept-1").unwrap();
        w.append(b"kept-2").unwrap();
        w.sync().unwrap();
        let intact = w.bytes();
        w.append(b"torn-away").unwrap();
        drop(w);
        // Simulate the crash: chop the last frame mid-payload.
        let bytes = std::fs::read(&path).unwrap();
        for cut in [intact + 3, intact + FRAME_HEADER + 4, intact + FRAME_HEADER] {
            std::fs::write(&path, &bytes[..cut as usize]).unwrap();
            let read = read_frames(&path).unwrap();
            assert!(read.torn_tail, "cut at {cut}");
            assert_eq!(read.frames.len(), 2);
            assert_eq!(read.valid_bytes, intact);
        }
        // Reopening truncates, and fresh appends land cleanly after.
        std::fs::write(&path, &bytes[..(intact + 5) as usize]).unwrap();
        let (mut w, read) = FrameWriter::open(&path).unwrap();
        assert!(read.torn_tail);
        assert_eq!(read.frames.len(), 2);
        w.append(b"kept-3").unwrap();
        w.sync().unwrap();
        let read = read_frames(&path).unwrap();
        assert!(!read.torn_tail);
        assert_eq!(
            read.frames,
            vec![b"kept-1".to_vec(), b"kept-2".to_vec(), b"kept-3".to_vec()]
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn mid_file_corruption_is_a_typed_error_not_a_truncation() {
        let dir = temp_dir("corrupt");
        let path = dir.join("log");
        let (mut w, _) = FrameWriter::open(&path).unwrap();
        w.append(b"first-record").unwrap();
        w.append(b"second-record").unwrap();
        w.sync().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte of the *first* frame: acknowledged data
        // damaged, with intact frames after it.
        bytes[FRAME_HEADER as usize] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = read_frames(&path).unwrap_err();
        match err {
            StoreError::CorruptSegment { offset, .. } => assert_eq!(offset, 0),
            other => panic!("expected CorruptSegment, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(dir);
    }
}
