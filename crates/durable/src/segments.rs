//! The content-addressed instance store: append-only segment files.
//!
//! One record per event, framed by [`crate::frame`]:
//!
//! ```text
//! PUT       [1u8] [digest u64] [doc bytes ...]
//! TOMBSTONE [2u8] [digest u64]
//! ```
//!
//! Instances are keyed by their canonical content digest (the serving
//! layer's `instance_digest`), so writes deduplicate: a `put` for a
//! digest already live appends nothing. Deletes append a tombstone —
//! segments are never modified in place — and the dead bytes are
//! reclaimed by compaction on the next open, which rewrites the live set
//! into a fresh segment generation and unlinks the old files. Replaying
//! put/tombstone records is idempotent per digest, so a crash between
//! "new segment written" and "old segments removed" merely replays both
//! and converges to the same live set.
//!
//! Segments roll over at [`SegmentLog::SEGMENT_BYTES`]; files are named
//! `seg-<index>.log` and replayed in index order.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::codec::{Decoder, Encoder};
use crate::frame::{io_err, read_frames, FrameWriter};
use crate::StoreError;

const TAG_PUT: u8 = 1;
const TAG_TOMBSTONE: u8 = 2;

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("seg-{index:06}.log"))
}

fn decode_record(path: &Path, payload: &[u8]) -> Result<(u8, u64, Vec<u8>), StoreError> {
    let corrupt = |detail: &str| StoreError::CorruptSegment {
        path: path.to_path_buf(),
        offset: 0,
        detail: detail.into(),
    };
    let mut d = Decoder::new(payload);
    let tag = d.u8().ok_or_else(|| corrupt("record missing tag"))?;
    let digest = d.u64().ok_or_else(|| corrupt("record missing digest"))?;
    match tag {
        TAG_PUT => {
            let doc = d
                .bytes()
                .ok_or_else(|| corrupt("put record missing document"))?;
            Ok((tag, digest, doc.to_vec()))
        }
        TAG_TOMBSTONE => Ok((tag, digest, Vec::new())),
        other => Err(corrupt(&format!("unknown record tag {other}"))),
    }
}

/// The live documents recovered at open: `(digest, document)` pairs in
/// digest order.
pub type LiveDocs = Vec<(u64, Vec<u8>)>;

/// The open segment store: an append handle on the newest segment plus
/// the live digest set.
#[derive(Debug)]
pub struct SegmentLog {
    dir: PathBuf,
    writer: FrameWriter,
    writer_index: u64,
    /// Digests currently live (put without a later tombstone).
    live: BTreeMap<u64, ()>,
    /// Total intact bytes across all segments.
    bytes: u64,
    /// Segment files on disk (including the write head).
    segments: u64,
}

impl SegmentLog {
    /// Roll the write head to a fresh segment past this size.
    pub const SEGMENT_BYTES: u64 = 8 * 1024 * 1024;

    /// Opens (or creates) the segment directory, replays every segment,
    /// compacts when at least half the records are dead, and returns the
    /// live `(digest, document)` map in digest order.
    pub fn open(dir: &Path) -> Result<(Self, LiveDocs), StoreError> {
        fs::create_dir_all(dir).map_err(|e| io_err(dir, "create_dir", e))?;
        let mut indices: Vec<u64> = Vec::new();
        for entry in fs::read_dir(dir).map_err(|e| io_err(dir, "read_dir", e))? {
            let entry = entry.map_err(|e| io_err(dir, "read_dir", e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(index) = name
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".log"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                indices.push(index);
            }
        }
        indices.sort_unstable();

        let mut docs: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        let mut records = 0u64;
        for &index in &indices {
            let path = segment_path(dir, index);
            // Only the newest segment may carry a torn tail (older ones
            // were rolled past sealed); read_frames drops it either way.
            let read = read_frames(&path)?;
            for payload in &read.frames {
                records += 1;
                let (tag, digest, doc) = decode_record(&path, payload)?;
                match tag {
                    TAG_PUT => {
                        docs.insert(digest, doc);
                    }
                    _ => {
                        docs.remove(&digest);
                    }
                }
            }
        }

        let dead = records.saturating_sub(docs.len() as u64);
        let compact = !indices.is_empty() && dead * 2 >= records.max(1);
        let (writer, writer_index, bytes, segments) = if compact {
            // Rewrite the live set into the next segment generation, then
            // unlink the old files. Idempotent on crash (see module docs).
            let next = indices.last().copied().unwrap_or(0) + 1;
            let path = segment_path(dir, next);
            let (mut writer, _) = FrameWriter::open(&path)?;
            for (digest, doc) in &docs {
                writer.append(&encode_put(*digest, doc))?;
            }
            writer.sync()?;
            for &index in &indices {
                let old = segment_path(dir, index);
                fs::remove_file(&old).map_err(|e| io_err(&old, "remove", e))?;
            }
            let bytes = writer.bytes();
            (writer, next, bytes, 1)
        } else {
            let index = indices.last().copied().unwrap_or(1);
            let mut bytes = 0;
            for &i in &indices {
                bytes += read_frames(&segment_path(dir, i))?.valid_bytes;
            }
            let (writer, _) = FrameWriter::open(&segment_path(dir, index))?;
            (writer, index, bytes, indices.len().max(1) as u64)
        };

        let live: BTreeMap<u64, ()> = docs.keys().map(|&d| (d, ())).collect();
        let out: Vec<(u64, Vec<u8>)> = docs.into_iter().collect();
        Ok((
            SegmentLog {
                dir: dir.to_path_buf(),
                writer,
                writer_index,
                live,
                bytes,
                segments,
            },
            out,
        ))
    }

    fn roll_if_full(&mut self) -> Result<(), StoreError> {
        if self.writer.bytes() < Self::SEGMENT_BYTES {
            return Ok(());
        }
        self.writer.sync()?;
        self.writer_index += 1;
        let path = segment_path(&self.dir, self.writer_index);
        let (writer, _) = FrameWriter::open(&path)?;
        self.writer = writer;
        self.segments += 1;
        Ok(())
    }

    /// Appends (and fsyncs) a put. Returns `false` without touching disk
    /// when the digest is already live — dedup-on-write.
    pub fn put(&mut self, digest: u64, doc: &[u8]) -> Result<bool, StoreError> {
        if self.live.contains_key(&digest) {
            return Ok(false);
        }
        self.roll_if_full()?;
        let before = self.writer.bytes();
        self.writer.append(&encode_put(digest, doc))?;
        self.writer.sync()?;
        self.bytes += self.writer.bytes() - before;
        self.live.insert(digest, ());
        Ok(true)
    }

    /// Appends (and fsyncs) a tombstone. Returns `false` without touching
    /// disk when the digest is not live.
    pub fn delete(&mut self, digest: u64) -> Result<bool, StoreError> {
        if self.live.remove(&digest).is_none() {
            return Ok(false);
        }
        self.roll_if_full()?;
        let before = self.writer.bytes();
        let mut e = Encoder::new();
        e.put_u8(TAG_TOMBSTONE).put_u64(digest);
        self.writer.append(&e.finish())?;
        self.writer.sync()?;
        self.bytes += self.writer.bytes() - before;
        Ok(true)
    }

    /// Live instances.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no instance is live.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Segment files on disk.
    pub fn segments(&self) -> u64 {
        self.segments
    }

    /// Intact bytes across all segments (live and dead records).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

fn encode_put(digest: u64, doc: &[u8]) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(TAG_PUT).put_u64(digest).put_bytes(doc);
    e.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ukc-seg-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn puts_dedupe_and_survive_reopen() {
        let dir = temp_dir("dedupe");
        {
            let (mut log, live) = SegmentLog::open(&dir).unwrap();
            assert!(live.is_empty());
            assert!(log.put(7, b"doc-7").unwrap());
            assert!(!log.put(7, b"doc-7-again").unwrap());
            assert!(log.put(9, b"doc-9").unwrap());
            assert_eq!(log.len(), 2);
        }
        let (log, live) = SegmentLog::open(&dir).unwrap();
        assert_eq!(log.len(), 2);
        // The dedup means the first document wins.
        assert_eq!(live, vec![(7, b"doc-7".to_vec()), (9, b"doc-9".to_vec())]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn tombstones_remove_and_compaction_reclaims() {
        let dir = temp_dir("tombstone");
        {
            let (mut log, _) = SegmentLog::open(&dir).unwrap();
            for d in 0..10u64 {
                log.put(d, format!("doc-{d}").as_bytes()).unwrap();
            }
            for d in 0..8u64 {
                assert!(log.delete(d).unwrap());
            }
            assert!(!log.delete(42).unwrap());
            assert_eq!(log.len(), 2);
        }
        // 10 puts + 8 tombstones, 2 live: compaction triggers on open and
        // rewrites into a fresh single segment.
        let (log, live) = SegmentLog::open(&dir).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log.segments(), 1);
        assert_eq!(live.iter().map(|(d, _)| *d).collect::<Vec<_>>(), vec![8, 9]);
        // The compacted generation holds exactly the live records.
        let files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(files.len(), 1);
        // Reopening the compacted store is stable (no further rewrite).
        let (log, live) = SegmentLog::open(&dir).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(live.len(), 2);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_tail_in_newest_segment_drops_only_the_tail() {
        let dir = temp_dir("torn");
        {
            let (mut log, _) = SegmentLog::open(&dir).unwrap();
            log.put(1, b"one").unwrap();
            log.put(2, b"two").unwrap();
        }
        // Append half a frame of garbage, as a crash mid-append would.
        let seg = segment_path(&dir, 1);
        let mut bytes = std::fs::read(&seg).unwrap();
        bytes.extend_from_slice(&[9, 0, 0, 0, 1, 2]);
        std::fs::write(&seg, &bytes).unwrap();
        let (log, live) = SegmentLog::open(&dir).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(live.iter().map(|(d, _)| *d).collect::<Vec<_>>(), vec![1, 2]);
        let _ = std::fs::remove_dir_all(dir);
    }
}
