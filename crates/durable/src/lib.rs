//! `ukc-durable` — the durability subsystem: everything the server must
//! not lose across a restart, on disk, dependency-free (std only).
//!
//! In-memory serving state has three durable counterparts, each with its
//! own file format and failure story:
//!
//! * **Instance segments** ([`segments`]) — a content-addressed,
//!   append-only store of uploaded instance documents, keyed by the
//!   canonical `instance_digest`. Identical uploads deduplicate on
//!   write; deletes append tombstones; compaction on open rewrites the
//!   live set and unlinks dead segments.
//! * **Stream WAL** ([`wal`]) — one fsync'd, CRC-framed record per
//!   stream lifecycle event. A push is acknowledged *only after* its
//!   record is durable, so every acked epoch survives a crash by
//!   construction. Recovery replays the records through the same
//!   parse-and-fold path the live server ran.
//! * **Snapshots** ([`snapshot`]) — periodic per-stream state snapshots,
//!   written atomically and keyed by the stream's canonical state
//!   digest, so recovery replays only the WAL tail past the last
//!   snapshot instead of the stream's whole history.
//!
//! The crate is deliberately *byte-oriented*: it stores documents and
//! state payloads as opaque bytes and knows nothing about solvers,
//! summaries, or JSON. The serving layer owns the encoding of both and
//! the digest verification at the seams. Every failure is a typed
//! [`StoreError`]; nothing in this crate panics on disk contents.
//!
//! Crash-consistency policy, in one table:
//!
//! | artifact | torn tail | mid-file damage |
//! |---|---|---|
//! | segment / WAL | dropped + truncated (unacked) | [`StoreError::CorruptSegment`] |
//! | snapshot | ignored (WAL covers it) | ignored (WAL covers it) |

pub mod codec;
pub mod frame;
pub mod segments;
pub mod snapshot;
pub mod wal;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use segments::SegmentLog;
use snapshot::{Snapshot, SnapshotStore};
use wal::{StreamWal, WalRecord};

/// A typed durability failure.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O operation failed (disk gone, permissions, out of space).
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// What was being attempted (`"fsync"`, `"append"`, ...).
        op: &'static str,
        /// The underlying error.
        source: std::io::Error,
    },
    /// Acknowledged data failed its checksum or decoded to garbage.
    CorruptSegment {
        /// The offending file.
        path: PathBuf,
        /// Byte offset of the damaged frame (0 when unknown).
        offset: u64,
        /// What was wrong.
        detail: String,
    },
    /// The data directory path exists but is not a directory.
    NotADirectory {
        /// The offending path.
        path: PathBuf,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, op, source } => {
                write!(f, "storage {op} failed on {}: {source}", path.display())
            }
            StoreError::CorruptSegment {
                path,
                offset,
                detail,
            } => write!(
                f,
                "corrupt segment {} at byte {offset}: {detail}",
                path.display()
            ),
            StoreError::NotADirectory { path } => {
                write!(f, "{} exists and is not a directory", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// One stream reassembled from the WAL and its snapshot.
#[derive(Debug)]
pub struct RecoveredStream {
    /// Server-assigned stream sequence number.
    pub seq: u64,
    /// The original `POST /streams` body.
    pub create: Vec<u8>,
    /// The newest intact snapshot, if any (already pruned from `pushes`).
    pub snapshot: Option<Snapshot>,
    /// Push bodies to replay, `(epoch, body)` in epoch order — only the
    /// tail past the snapshot.
    pub pushes: Vec<(u64, Vec<u8>)>,
}

/// Everything [`DurableStore::open`] recovered from disk.
#[derive(Debug)]
pub struct Recovery {
    /// Live instance documents, `(digest, doc)` in digest order.
    pub instances: Vec<(u64, Vec<u8>)>,
    /// Live streams in sequence order.
    pub streams: Vec<RecoveredStream>,
    /// The next stream sequence number to assign.
    pub next_seq: u64,
    /// Whether any torn tail was dropped during replay.
    pub torn_tail: bool,
}

/// Durability gauges for `/metrics`.
#[derive(Clone, Copy, Debug, Default)]
pub struct DurabilityStats {
    /// Intact stream-WAL bytes.
    pub wal_bytes: u64,
    /// Instance segment files on disk.
    pub segments: u64,
    /// Intact instance-segment bytes.
    pub segment_bytes: u64,
    /// Snapshot files on disk.
    pub snapshots: u64,
    /// Live instances in the segment store.
    pub instances: u64,
    /// Durable appends synced so far.
    pub fsync_count: u64,
    /// Wall-clock seconds spent making appends durable (write + fsync).
    pub fsync_seconds: f64,
}

/// The open durability layer: one per `--data-dir`.
///
/// Interior mutability mirrors the in-memory stores: the instance log
/// and WAL serialize appends behind mutexes, snapshots are
/// atomic-replace files, and the fsync clock is a relaxed counter.
#[derive(Debug)]
pub struct DurableStore {
    instances: Mutex<SegmentLog>,
    wal: Mutex<StreamWal>,
    snapshots: SnapshotStore,
    fsync_count: AtomicU64,
    fsync_nanos: AtomicU64,
}

impl DurableStore {
    /// Opens (creating or recovering) the durability layer under `dir`.
    ///
    /// Validates the path (a file where the directory should be is
    /// [`StoreError::NotADirectory`]; an unwritable one fails the probe
    /// with [`StoreError::Io`]), replays segments + WAL + snapshots into
    /// a [`Recovery`], prunes snapshot-covered pushes, and compacts the
    /// WAL down to the live tail.
    pub fn open(dir: &Path) -> Result<(Self, Recovery), StoreError> {
        if dir.exists() && !dir.is_dir() {
            return Err(StoreError::NotADirectory {
                path: dir.to_path_buf(),
            });
        }
        std::fs::create_dir_all(dir).map_err(|e| StoreError::Io {
            path: dir.to_path_buf(),
            op: "create_dir",
            source: e,
        })?;
        // Writability probe: fail at open, not on the first push.
        let probe = dir.join(".probe");
        std::fs::write(&probe, b"probe")
            .and_then(|()| std::fs::remove_file(&probe))
            .map_err(|e| StoreError::Io {
                path: dir.to_path_buf(),
                op: "probe",
                source: e,
            })?;

        let (instance_log, instances) = SegmentLog::open(&dir.join("instances"))?;
        let (mut stream_wal, records, torn_tail) = StreamWal::open(&dir.join("wal"))?;
        let snapshots = SnapshotStore::open(&dir.join("snapshots"))?;

        // Reassemble streams from the WAL, in record order.
        let mut streams: BTreeMap<u64, RecoveredStream> = BTreeMap::new();
        let mut next_seq = 1u64;
        for record in records {
            match record {
                WalRecord::Create { seq, body } => {
                    next_seq = next_seq.max(seq + 1);
                    streams.insert(
                        seq,
                        RecoveredStream {
                            seq,
                            create: body,
                            snapshot: None,
                            pushes: Vec::new(),
                        },
                    );
                }
                WalRecord::Push { seq, epoch, body } => {
                    // Pushes for unknown streams (deleted mid-flight) are
                    // dropped: nothing references them anymore.
                    if let Some(stream) = streams.get_mut(&seq) {
                        stream.pushes.push((epoch, body));
                    }
                }
                WalRecord::Delete { seq } => {
                    streams.remove(&seq);
                    snapshots.remove(seq)?;
                }
            }
        }

        // Attach snapshots and prune the pushes they cover.
        for stream in streams.values_mut() {
            if let Some(snapshot) = snapshots.load(stream.seq)? {
                stream.pushes.retain(|(epoch, _)| *epoch > snapshot.epochs);
                stream.snapshot = Some(snapshot);
            }
        }

        // Compact the WAL down to what recovery actually needs: creates
        // plus the surviving push tails. Deleted streams and
        // snapshot-covered epochs vanish from disk here.
        let mut survivors: Vec<WalRecord> = Vec::new();
        for stream in streams.values() {
            survivors.push(WalRecord::Create {
                seq: stream.seq,
                body: stream.create.clone(),
            });
            for (epoch, body) in &stream.pushes {
                survivors.push(WalRecord::Push {
                    seq: stream.seq,
                    epoch: *epoch,
                    body: body.clone(),
                });
            }
        }
        stream_wal.rewrite(&survivors)?;

        let recovery = Recovery {
            instances,
            streams: streams.into_values().collect(),
            next_seq,
            torn_tail,
        };
        Ok((
            DurableStore {
                instances: Mutex::new(instance_log),
                wal: Mutex::new(stream_wal),
                snapshots,
                fsync_count: AtomicU64::new(0),
                fsync_nanos: AtomicU64::new(0),
            },
            recovery,
        ))
    }

    fn record_sync(&self, t: Instant) {
        self.fsync_count.fetch_add(1, Ordering::Relaxed);
        self.fsync_nanos.fetch_add(
            t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
    }

    /// Durably stores an instance document; `false` means the digest was
    /// already live (dedup) and nothing touched disk.
    pub fn put_instance(&self, digest: u64, doc: &[u8]) -> Result<bool, StoreError> {
        let t = Instant::now();
        let wrote = self
            .instances
            .lock()
            .expect("instance log lock poisoned")
            .put(digest, doc)?;
        if wrote {
            self.record_sync(t);
        }
        Ok(wrote)
    }

    /// Durably tombstones an instance; `false` when it was not live.
    pub fn delete_instance(&self, digest: u64) -> Result<bool, StoreError> {
        let t = Instant::now();
        let wrote = self
            .instances
            .lock()
            .expect("instance log lock poisoned")
            .delete(digest)?;
        if wrote {
            self.record_sync(t);
        }
        Ok(wrote)
    }

    /// Durably records a stream creation.
    pub fn create_stream(&self, seq: u64, body: &[u8]) -> Result<(), StoreError> {
        let t = Instant::now();
        self.wal.lock().expect("wal lock poisoned").append(
            &WalRecord::Create {
                seq,
                body: body.to_vec(),
            },
            true,
        )?;
        self.record_sync(t);
        Ok(())
    }

    /// Durably records one pushed epoch — the ack contract: callers must
    /// not answer the push until this returns.
    pub fn append_push(&self, seq: u64, epoch: u64, body: &[u8]) -> Result<(), StoreError> {
        let t = Instant::now();
        self.wal.lock().expect("wal lock poisoned").append(
            &WalRecord::Push {
                seq,
                epoch,
                body: body.to_vec(),
            },
            true,
        )?;
        self.record_sync(t);
        Ok(())
    }

    /// Durably records a stream deletion and drops its snapshot.
    pub fn delete_stream(&self, seq: u64) -> Result<(), StoreError> {
        let t = Instant::now();
        self.wal
            .lock()
            .expect("wal lock poisoned")
            .append(&WalRecord::Delete { seq }, true)?;
        self.record_sync(t);
        self.snapshots.remove(seq)
    }

    /// Atomically replaces stream `seq`'s snapshot.
    pub fn write_snapshot(&self, seq: u64, snapshot: &Snapshot) -> Result<(), StoreError> {
        self.snapshots.write(seq, snapshot)
    }

    /// Current durability gauges.
    pub fn stats(&self) -> DurabilityStats {
        let (segments, segment_bytes, instances) = {
            let log = self.instances.lock().expect("instance log lock poisoned");
            (log.segments(), log.bytes(), log.len() as u64)
        };
        let wal_bytes = self.wal.lock().expect("wal lock poisoned").bytes();
        DurabilityStats {
            wal_bytes,
            segments,
            segment_bytes,
            snapshots: self.snapshots.count().unwrap_or(0),
            instances,
            fsync_count: self.fsync_count.load(Ordering::Relaxed),
            fsync_seconds: self.fsync_nanos.load(Ordering::Relaxed) as f64 / 1e9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ukc-durable-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn open_recovers_instances_streams_and_next_seq() {
        let dir = temp_dir("recover");
        {
            let (store, recovery) = DurableStore::open(&dir).unwrap();
            assert!(recovery.instances.is_empty());
            assert!(recovery.streams.is_empty());
            assert_eq!(recovery.next_seq, 1);
            store.put_instance(11, b"inst-11").unwrap();
            store.put_instance(22, b"inst-22").unwrap();
            store.delete_instance(22).unwrap();
            store.create_stream(1, b"create-1").unwrap();
            store.append_push(1, 1, b"push-1-1").unwrap();
            store.append_push(1, 2, b"push-1-2").unwrap();
            store.create_stream(2, b"create-2").unwrap();
            store.append_push(2, 1, b"push-2-1").unwrap();
            store.delete_stream(2).unwrap();
        }
        let (store, recovery) = DurableStore::open(&dir).unwrap();
        assert_eq!(recovery.instances, vec![(11, b"inst-11".to_vec())]);
        assert_eq!(recovery.streams.len(), 1);
        let s = &recovery.streams[0];
        assert_eq!((s.seq, s.create.as_slice()), (1, &b"create-1"[..]));
        assert!(s.snapshot.is_none());
        assert_eq!(
            s.pushes,
            vec![(1, b"push-1-1".to_vec()), (2, b"push-1-2".to_vec())]
        );
        assert_eq!(recovery.next_seq, 3);
        let stats = store.stats();
        assert_eq!(stats.instances, 1);
        assert!(stats.wal_bytes > 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn snapshots_prune_replay_to_the_wal_tail() {
        let dir = temp_dir("snapshot-prune");
        {
            let (store, _) = DurableStore::open(&dir).unwrap();
            store.create_stream(1, b"create").unwrap();
            for epoch in 1..=6u64 {
                store
                    .append_push(1, epoch, format!("push-{epoch}").as_bytes())
                    .unwrap();
            }
            store
                .write_snapshot(
                    1,
                    &Snapshot {
                        epochs: 4,
                        digest: 77,
                        payload: b"state-at-4".to_vec(),
                    },
                )
                .unwrap();
        }
        let (_, recovery) = DurableStore::open(&dir).unwrap();
        let s = &recovery.streams[0];
        let snap = s.snapshot.as_ref().expect("snapshot recovered");
        assert_eq!((snap.epochs, snap.digest), (4, 77));
        assert_eq!(snap.payload, b"state-at-4");
        // Only the tail past the snapshot replays.
        assert_eq!(
            s.pushes,
            vec![(5, b"push-5".to_vec()), (6, b"push-6".to_vec())]
        );
        // And the reopened WAL was compacted down to exactly that tail:
        // a second open sees the same picture.
        let (_, recovery) = DurableStore::open(&dir).unwrap();
        assert_eq!(recovery.streams[0].pushes.len(), 2);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn not_a_directory_is_typed() {
        let dir = temp_dir("file-in-the-way");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("data");
        std::fs::write(&file, b"not a dir").unwrap();
        match DurableStore::open(&file) {
            Err(StoreError::NotADirectory { path }) => assert_eq!(path, file),
            other => panic!("expected NotADirectory, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_wal_tail_drops_only_the_unacked_epoch() {
        let dir = temp_dir("torn-tail");
        {
            let (store, _) = DurableStore::open(&dir).unwrap();
            store.create_stream(1, b"create").unwrap();
            store.append_push(1, 1, b"acked-epoch").unwrap();
            store.append_push(1, 2, b"torn-epoch").unwrap();
        }
        let wal_path = dir.join("wal").join("streams.wal");
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 7]).unwrap();
        let (_, recovery) = DurableStore::open(&dir).unwrap();
        assert!(recovery.torn_tail);
        assert_eq!(
            recovery.streams[0].pushes,
            vec![(1, b"acked-epoch".to_vec())]
        );
        let _ = std::fs::remove_dir_all(dir);
    }
}
