//! Periodic stream snapshots: one file per stream, replacing the need to
//! replay its full WAL history.
//!
//! A snapshot is written *atomically* — temp file, fsync, rename — so a
//! crash mid-snapshot leaves the previous snapshot (or none) intact, and
//! recovery never sees a half-written state. The file body is one CRC
//! frame wrapping:
//!
//! ```text
//! [epochs u64] [state digest u64] [payload bytes ...]
//! ```
//!
//! `epochs` is the number of WAL push records the snapshot covers:
//! recovery restores the payload and replays only records with a larger
//! epoch. `digest` is the stream's canonical state digest at snapshot
//! time; the serving layer verifies the restored state reproduces it and
//! falls back to full WAL replay on any mismatch — a snapshot can never
//! make recovery *wrong*, only faster.

use std::fs;
use std::path::{Path, PathBuf};

use crate::codec::{Decoder, Encoder};
use crate::frame::{crc32, io_err, FRAME_HEADER};
use crate::StoreError;

/// One decoded snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// WAL push records covered (recovery replays epochs beyond this).
    pub epochs: u64,
    /// The stream's canonical state digest at snapshot time.
    pub digest: u64,
    /// Opaque state payload (encoded by the serving layer).
    pub payload: Vec<u8>,
}

/// The snapshot directory handle.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
}

fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("s{seq:06x}.snap"))
}

impl SnapshotStore {
    /// Opens (or creates) the snapshot directory.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        fs::create_dir_all(dir).map_err(|e| io_err(dir, "create_dir", e))?;
        Ok(SnapshotStore {
            dir: dir.to_path_buf(),
        })
    }

    /// Atomically writes the snapshot for stream `seq`, replacing any
    /// previous one.
    pub fn write(&self, seq: u64, snapshot: &Snapshot) -> Result<(), StoreError> {
        let mut e = Encoder::new();
        e.put_u64(snapshot.epochs)
            .put_u64(snapshot.digest)
            .put_bytes(&snapshot.payload);
        let body = e.finish();
        let mut framed = Vec::with_capacity(FRAME_HEADER as usize + body.len());
        framed.extend_from_slice(&(body.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32(&body).to_le_bytes());
        framed.extend_from_slice(&body);

        let path = snapshot_path(&self.dir, seq);
        let tmp = path.with_extension("snap.tmp");
        fs::write(&tmp, &framed).map_err(|e| io_err(&tmp, "write", e))?;
        let file = fs::File::open(&tmp).map_err(|e| io_err(&tmp, "open", e))?;
        file.sync_all().map_err(|e| io_err(&tmp, "fsync", e))?;
        drop(file);
        fs::rename(&tmp, &path).map_err(|e| io_err(&path, "rename", e))?;
        Ok(())
    }

    /// Loads the snapshot for stream `seq`. `Ok(None)` when absent *or*
    /// damaged — a bad snapshot is a lost optimization, not an error,
    /// because the WAL retains everything it covered until a newer
    /// snapshot lands.
    pub fn load(&self, seq: u64) -> Result<Option<Snapshot>, StoreError> {
        let path = snapshot_path(&self.dir, seq);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err(&path, "read", e)),
        };
        if bytes.len() < FRAME_HEADER as usize {
            return Ok(None);
        }
        let len = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        let body = match bytes.get(FRAME_HEADER as usize..FRAME_HEADER as usize + len) {
            Some(b) if crc32(b) == crc => b,
            _ => return Ok(None),
        };
        let mut d = Decoder::new(body);
        let (epochs, digest) = match (d.u64(), d.u64()) {
            (Some(e), Some(g)) => (e, g),
            _ => return Ok(None),
        };
        let payload = match d.bytes() {
            Some(p) => p.to_vec(),
            None => return Ok(None),
        };
        Ok(Some(Snapshot {
            epochs,
            digest,
            payload,
        }))
    }

    /// Removes the snapshot for stream `seq` (stream deletion).
    pub fn remove(&self, seq: u64) -> Result<(), StoreError> {
        let path = snapshot_path(&self.dir, seq);
        match fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err(&path, "remove", e)),
        }
    }

    /// Number of snapshot files on disk.
    pub fn count(&self) -> Result<u64, StoreError> {
        let mut n = 0;
        for entry in fs::read_dir(&self.dir).map_err(|e| io_err(&self.dir, "read_dir", e))? {
            let entry = entry.map_err(|e| io_err(&self.dir, "read_dir", e))?;
            if entry.file_name().to_string_lossy().ends_with(".snap") {
                n += 1;
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ukc-snap-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_load_replace_remove() {
        let dir = temp_dir("lifecycle");
        let store = SnapshotStore::open(&dir).unwrap();
        assert_eq!(store.load(1).unwrap(), None);
        let first = Snapshot {
            epochs: 4,
            digest: 0xdead_beef,
            payload: b"state-a".to_vec(),
        };
        store.write(1, &first).unwrap();
        assert_eq!(store.load(1).unwrap(), Some(first));
        let second = Snapshot {
            epochs: 9,
            digest: 0xfeed_f00d,
            payload: b"state-b".to_vec(),
        };
        store.write(1, &second).unwrap();
        assert_eq!(store.load(1).unwrap(), Some(second));
        assert_eq!(store.count().unwrap(), 1);
        store.remove(1).unwrap();
        store.remove(1).unwrap(); // idempotent
        assert_eq!(store.load(1).unwrap(), None);
        assert_eq!(store.count().unwrap(), 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn damaged_snapshots_load_as_none() {
        let dir = temp_dir("damaged");
        let store = SnapshotStore::open(&dir).unwrap();
        let snap = Snapshot {
            epochs: 2,
            digest: 42,
            payload: vec![1, 2, 3, 4, 5, 6, 7, 8],
        };
        store.write(3, &snap).unwrap();
        let path = snapshot_path(&dir, 3);
        let good = fs::read(&path).unwrap();
        // Truncated.
        fs::write(&path, &good[..good.len() - 3]).unwrap();
        assert_eq!(store.load(3).unwrap(), None);
        // Bit flip.
        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x80;
        fs::write(&path, &flipped).unwrap();
        assert_eq!(store.load(3).unwrap(), None);
        // Intact again.
        fs::write(&path, &good).unwrap();
        assert_eq!(store.load(3).unwrap(), Some(snap));
        let _ = std::fs::remove_dir_all(dir);
    }
}
