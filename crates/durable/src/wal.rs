//! The stream write-ahead log: one fsync'd record per stream lifecycle
//! event.
//!
//! Record payloads, framed by [`crate::frame`]:
//!
//! ```text
//! CREATE [1u8] [seq u64] [body bytes ...]   // the POST /streams body
//! PUSH   [2u8] [seq u64] [epoch u64] [body bytes ...]  // the push body
//! DELETE [3u8] [seq u64]
//! ```
//!
//! The WAL stores the *wire bodies*, not decoded state: recovery replays
//! each push through the same parse-and-fold path the live server ran,
//! so the rebuilt stream state is bit-identical by determinism of the
//! fold, not by trusting a separate serializer. Push records are the
//! durability point of the ack contract — `POST /streams/{id}/push`
//! responds only after its record is fsync'd.
//!
//! The WAL is compacted on open (see [`StreamWal::rewrite`]): deleted
//! streams vanish and pushes already covered by a snapshot are dropped,
//! so the file stays proportional to the live tail, not stream history.

use std::fs;
use std::path::{Path, PathBuf};

use crate::codec::{Decoder, Encoder};
use crate::frame::{io_err, FrameWriter};
use crate::StoreError;

const TAG_CREATE: u8 = 1;
const TAG_PUSH: u8 = 2;
const TAG_DELETE: u8 = 3;

/// One decoded WAL record.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// Stream registration: the `POST /streams` body.
    Create {
        /// Server-assigned stream sequence number.
        seq: u64,
        /// The creation request body.
        body: Vec<u8>,
    },
    /// One acked epoch: the `POST /streams/{id}/push` body.
    Push {
        /// Stream sequence number.
        seq: u64,
        /// 1-based epoch index within the stream.
        epoch: u64,
        /// The push request body.
        body: Vec<u8>,
    },
    /// Stream deletion.
    Delete {
        /// Stream sequence number.
        seq: u64,
    },
}

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            WalRecord::Create { seq, body } => {
                e.put_u8(TAG_CREATE).put_u64(*seq).put_bytes(body);
            }
            WalRecord::Push { seq, epoch, body } => {
                e.put_u8(TAG_PUSH)
                    .put_u64(*seq)
                    .put_u64(*epoch)
                    .put_bytes(body);
            }
            WalRecord::Delete { seq } => {
                e.put_u8(TAG_DELETE).put_u64(*seq);
            }
        }
        e.finish()
    }

    fn decode(path: &Path, payload: &[u8]) -> Result<Self, StoreError> {
        let corrupt = |detail: &str| StoreError::CorruptSegment {
            path: path.to_path_buf(),
            offset: 0,
            detail: detail.into(),
        };
        let mut d = Decoder::new(payload);
        let tag = d.u8().ok_or_else(|| corrupt("wal record missing tag"))?;
        let seq = d.u64().ok_or_else(|| corrupt("wal record missing seq"))?;
        match tag {
            TAG_CREATE => Ok(WalRecord::Create {
                seq,
                body: d
                    .bytes()
                    .ok_or_else(|| corrupt("create record missing body"))?
                    .to_vec(),
            }),
            TAG_PUSH => {
                let epoch = d
                    .u64()
                    .ok_or_else(|| corrupt("push record missing epoch"))?;
                Ok(WalRecord::Push {
                    seq,
                    epoch,
                    body: d
                        .bytes()
                        .ok_or_else(|| corrupt("push record missing body"))?
                        .to_vec(),
                })
            }
            TAG_DELETE => Ok(WalRecord::Delete { seq }),
            other => Err(corrupt(&format!("unknown wal record tag {other}"))),
        }
    }
}

/// The open WAL: an append handle plus replay facts.
#[derive(Debug)]
pub struct StreamWal {
    path: PathBuf,
    writer: FrameWriter,
}

impl StreamWal {
    /// Opens (or creates) `dir/streams.wal`, truncating a torn tail, and
    /// returns every intact record in append order.
    pub fn open(dir: &Path) -> Result<(Self, Vec<WalRecord>, bool), StoreError> {
        fs::create_dir_all(dir).map_err(|e| io_err(dir, "create_dir", e))?;
        let path = dir.join("streams.wal");
        let (writer, read) = FrameWriter::open(&path)?;
        let mut records = Vec::with_capacity(read.frames.len());
        for payload in &read.frames {
            records.push(WalRecord::decode(&path, payload)?);
        }
        Ok((StreamWal { path, writer }, records, read.torn_tail))
    }

    /// Appends one record; `sync` controls whether it is fsync'd before
    /// returning (push acks must sync; a create before its 201 likewise).
    pub fn append(&mut self, record: &WalRecord, sync: bool) -> Result<(), StoreError> {
        self.writer.append(&record.encode())?;
        if sync {
            self.writer.sync()?;
        }
        Ok(())
    }

    /// Forces appended records to stable storage.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.writer.sync()
    }

    /// Intact WAL bytes.
    pub fn bytes(&self) -> u64 {
        self.writer.bytes()
    }

    /// Rewrites the WAL to exactly `records` (compaction): the survivors
    /// are written to a sibling temp file, fsync'd, and renamed over the
    /// log, so a crash mid-rewrite leaves the original intact.
    pub fn rewrite(&mut self, records: &[WalRecord]) -> Result<(), StoreError> {
        let tmp = self.path.with_extension("wal.tmp");
        let _ = fs::remove_file(&tmp);
        let (mut writer, _) = FrameWriter::open(&tmp)?;
        for record in records {
            writer.append(&record.encode())?;
        }
        writer.sync()?;
        drop(writer);
        fs::rename(&tmp, &self.path).map_err(|e| io_err(&self.path, "rename", e))?;
        let (writer, _) = FrameWriter::open(&self.path)?;
        self.writer = writer;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ukc-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn push(seq: u64, epoch: u64, body: &str) -> WalRecord {
        WalRecord::Push {
            seq,
            epoch,
            body: body.as_bytes().to_vec(),
        }
    }

    #[test]
    fn records_round_trip_in_order() {
        let dir = temp_dir("roundtrip");
        let wanted = vec![
            WalRecord::Create {
                seq: 1,
                body: b"{\"k\":2}".to_vec(),
            },
            push(1, 1, "{\"points\":[]}"),
            push(1, 2, "chunk-2"),
            WalRecord::Delete { seq: 1 },
        ];
        {
            let (mut wal, records, torn) = StreamWal::open(&dir).unwrap();
            assert!(records.is_empty());
            assert!(!torn);
            for r in &wanted {
                wal.append(r, true).unwrap();
            }
        }
        let (wal, records, torn) = StreamWal::open(&dir).unwrap();
        assert_eq!(records, wanted);
        assert!(!torn);
        assert!(wal.bytes() > 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_tail_drops_only_the_unacked_record() {
        let dir = temp_dir("torn");
        {
            let (mut wal, _, _) = StreamWal::open(&dir).unwrap();
            wal.append(&push(1, 1, "acked"), true).unwrap();
            wal.append(&push(1, 2, "never-acked"), false).unwrap();
            wal.sync().unwrap();
        }
        let path = dir.join("streams.wal");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (_, records, torn) = StreamWal::open(&dir).unwrap();
        assert!(torn);
        assert_eq!(records, vec![push(1, 1, "acked")]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn rewrite_compacts_to_exactly_the_survivors() {
        let dir = temp_dir("rewrite");
        {
            let (mut wal, _, _) = StreamWal::open(&dir).unwrap();
            for e in 1..=10 {
                wal.append(&push(1, e, &format!("epoch-{e}")), false)
                    .unwrap();
            }
            wal.sync().unwrap();
            let survivors = vec![push(1, 9, "epoch-9"), push(1, 10, "epoch-10")];
            wal.rewrite(&survivors).unwrap();
            // The handle keeps appending after a rewrite.
            wal.append(&push(1, 11, "epoch-11"), true).unwrap();
        }
        let (_, records, _) = StreamWal::open(&dir).unwrap();
        assert_eq!(
            records,
            vec![
                push(1, 9, "epoch-9"),
                push(1, 10, "epoch-10"),
                push(1, 11, "epoch-11")
            ]
        );
        let _ = std::fs::remove_dir_all(dir);
    }
}
