//! Crash recovery against the real `ukc` binary: SIGKILL the serving
//! process mid-push (no graceful shutdown of any kind), restart it on
//! the same `--data-dir`, and verify the durability contract — every
//! *acknowledged* epoch is present and the recovered stream state is
//! bit-identical to a fresh replay of the same feed.
//!
//! Also pins the `--data-dir` startup validation: a file in the way or
//! an uncreatable path is a typed argument error and a clean non-zero
//! exit, printed before anything binds.

use std::io::BufRead;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use ukc_json::Json;
use ukc_server::client;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ukc-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A deterministic chunk per epoch — the whole test leans on this:
/// replaying `chunk_doc(1..=e)` into any stream must reproduce the
/// digest the crashed server acked at epoch `e`.
fn chunk_doc(epoch: usize) -> String {
    let points: Vec<String> = (0..8)
        .map(|i| {
            let x = i as f64 + 0.125;
            let y = epoch as f64 * 3.5;
            format!(
                r#"{{"locations": [[{x}, {y}], [{}, {}]], "probs": [0.25, 0.75]}}"#,
                x + 0.5,
                y + 1.75
            )
        })
        .collect();
    format!(r#"{{"dim": 2, "points": [{}]}}"#, points.join(", "))
}

fn parse(body: &str) -> Json {
    Json::parse(body).unwrap_or_else(|e| panic!("bad JSON response {body:?}: {e}"))
}

fn str_field(doc: &Json, key: &str) -> String {
    doc.get(key)
        .and_then(|v| v.as_str())
        .unwrap_or_else(|| panic!("missing {key:?} in {}", doc.compact()))
        .to_string()
}

struct Server {
    child: Child,
    addr: SocketAddr,
    recovery_line: Option<String>,
}

/// Spawns `ukc serve --data-dir <dir>` on an ephemeral port and scrapes
/// the bound address (and any recovery report) off stderr.
fn spawn_server(dir: &Path) -> Server {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ukc"))
        .args(["serve", "--addr", "127.0.0.1:0", "--data-dir"])
        .arg(dir)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ukc serve");
    let mut reader = std::io::BufReader::new(child.stderr.take().expect("piped stderr"));
    let mut recovery_line = None;
    let addr = loop {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read server stderr") == 0 {
            panic!("server exited before listening; last: {recovery_line:?}");
        }
        let line = line.trim();
        if line.starts_with("ukc-server recovered") {
            recovery_line = Some(line.to_string());
        } else if let Some(rest) = line.strip_prefix("ukc-server listening on ") {
            break rest.parse().expect("bound address parses");
        }
    };
    // Keep draining stderr so the child can never block on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while reader.read_line(&mut sink).unwrap_or(0) > 0 {
            sink.clear();
        }
    });
    Server {
        child,
        addr,
        recovery_line,
    }
}

#[test]
fn sigkill_mid_push_loses_no_acked_epoch() {
    let dir = temp_dir("sigkill");
    std::fs::create_dir_all(&dir).unwrap();
    let mut server = spawn_server(&dir);
    let addr = server.addr;

    let created = client::request(addr, "POST", "/streams", Some(r#"{"k": 2, "budget": 8}"#))
        .expect("create stream");
    assert_eq!(created.status, 201, "{}", created.body);
    let id = str_field(&parse(&created.body), "id");

    // Push continuously from a side thread, recording the digest of
    // every *acked* epoch, while the main thread SIGKILLs the server
    // mid-flight.
    let acked: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let pusher = {
        let acked = Arc::clone(&acked);
        let stop = Arc::clone(&stop);
        let path = format!("/streams/{id}/push");
        std::thread::spawn(move || {
            for epoch in 1usize.. {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                match client::request(addr, "POST", &path, Some(&chunk_doc(epoch))) {
                    Ok(r) if r.status == 200 => acked
                        .lock()
                        .unwrap()
                        .push(str_field(&parse(&r.body), "digest")),
                    // The kill landed: the in-flight push died unacked.
                    _ => break,
                }
            }
        })
    };
    while acked.lock().unwrap().len() < 5 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    server.child.kill().expect("SIGKILL server");
    server.child.wait().expect("reap server");
    stop.store(true, Ordering::Relaxed);
    pusher.join().unwrap();
    let acked = Arc::try_unwrap(acked).unwrap().into_inner().unwrap();

    let mut server = spawn_server(&dir);
    let addr = server.addr;
    assert!(
        server
            .recovery_line
            .as_deref()
            .is_some_and(|l| l.contains("1 stream(s)")),
        "restart did not report recovery: {:?}",
        server.recovery_line
    );

    // Every acked epoch survived; at most the one in-flight unacked
    // push may additionally have reached the WAL before the kill.
    let got = client::request(addr, "GET", &format!("/streams/{id}"), None).unwrap();
    assert_eq!(got.status, 200, "{}", got.body);
    let doc = parse(&got.body);
    let recovered_digest = str_field(&doc, "digest");
    let epochs = doc.get("epochs").and_then(|v| v.as_f64()).unwrap() as usize;
    assert!(
        epochs >= acked.len(),
        "acked {} epochs but only {epochs} recovered",
        acked.len()
    );
    assert!(epochs <= acked.len() + 1, "recovered unexplained epochs");

    // Bit-identity: replay the same deterministic feed into a fresh
    // stream on the recovered server; digests must match ack-for-ack,
    // and land exactly on the recovered stream's state.
    let control = client::request(addr, "POST", "/streams", Some(r#"{"k": 2, "budget": 8}"#))
        .expect("create control stream");
    let control_id = str_field(&parse(&control.body), "id");
    let mut last = String::new();
    for epoch in 1..=epochs {
        let r = client::request(
            addr,
            "POST",
            &format!("/streams/{control_id}/push"),
            Some(&chunk_doc(epoch)),
        )
        .unwrap();
        assert_eq!(r.status, 200, "{}", r.body);
        last = str_field(&parse(&r.body), "digest");
        if epoch <= acked.len() {
            assert_eq!(last, acked[epoch - 1], "replay diverged at epoch {epoch}");
        }
    }
    assert_eq!(
        last, recovered_digest,
        "recovered state is not the feed's fold"
    );

    server.child.kill().expect("kill server");
    server.child.wait().expect("reap server");
    let _ = std::fs::remove_dir_all(&dir);
}

fn serve_output(data_dir: &Path, extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_ukc"))
        .args(["serve", "--addr", "127.0.0.1:0", "--data-dir"])
        .arg(data_dir)
        .args(extra)
        .output()
        .expect("run ukc serve")
}

#[test]
fn data_dir_pointing_at_a_file_is_a_clean_typed_error() {
    let dir = temp_dir("badpath");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("occupied");
    std::fs::write(&file, b"not a directory").unwrap();

    let out = serve_output(&file, &[]);
    assert_eq!(out.status.code(), Some(1), "expected a clean exit(1)");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--data-dir") && stderr.contains("exists but is not a directory"),
        "untyped error: {stderr}"
    );
    assert!(
        !stderr.contains("listening"),
        "server bound anyway: {stderr}"
    );

    // A path nested under that file can never become a directory.
    let out = serve_output(&file.join("sub"), &[]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot be created as a directory"),
        "untyped error: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_interval_without_data_dir_is_rejected() {
    let out = Command::new(env!("CARGO_BIN_EXE_ukc"))
        .args(["serve", "--addr", "127.0.0.1:0", "--snapshot-interval", "4"])
        .output()
        .expect("run ukc serve");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--snapshot-interval is only meaningful with --data-dir"),
        "{stderr}"
    );
}
