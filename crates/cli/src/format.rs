//! JSON instance and solution formats.
//!
//! The library types keep their invariants behind validating constructors,
//! so the on-disk schema is a separate, plain-data layer with explicit
//! conversion (and therefore explicit validation errors) in both
//! directions:
//!
//! ```json
//! {
//!   "dim": 2,
//!   "points": [
//!     { "locations": [[0.0, 1.0], [2.0, 3.0]], "probs": [0.25, 0.75] }
//!   ]
//! }
//! ```

use serde::{Deserialize, Serialize};
use ukc_metric::Point;
use ukc_uncertain::{UncertainPoint, UncertainSet};

/// One uncertain point on disk.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JsonPoint {
    /// Possible locations, each a `dim`-length coordinate vector.
    pub locations: Vec<Vec<f64>>,
    /// Location probabilities (must sum to 1 within 1e-6).
    pub probs: Vec<f64>,
}

/// A complete instance on disk.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JsonInstance {
    /// Ambient dimension; every location must have this length.
    pub dim: usize,
    /// The uncertain points.
    pub points: Vec<JsonPoint>,
}

/// A solution on disk.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JsonSolution {
    /// Chosen centers.
    pub centers: Vec<Vec<f64>>,
    /// `assignment[i]` = index into `centers` serving point `i`.
    pub assignment: Vec<usize>,
    /// Exact expected cost reported by the solver.
    pub ecost: f64,
    /// Certified lower bound at solve time (0 when not computed).
    pub lower_bound: f64,
    /// Free-form description of how the solution was produced.
    pub method: String,
}

/// Conversion and validation errors, with the failing point index where
/// applicable.
#[derive(Debug)]
pub enum FormatError {
    /// A location's length disagrees with `dim`.
    DimMismatch {
        /// Index of the offending point.
        point: usize,
        /// Length found.
        got: usize,
        /// Length expected.
        expected: usize,
    },
    /// The underlying distribution was rejected.
    BadPoint {
        /// Index of the offending point.
        point: usize,
        /// The library's validation error.
        source: ukc_uncertain::UncertainPointError,
    },
    /// The instance has no points.
    Empty,
    /// A coordinate is NaN or infinite.
    NonFinite {
        /// Index of the offending point.
        point: usize,
    },
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::DimMismatch { point, got, expected } => {
                write!(f, "point {point}: location has {got} coordinates, instance dim is {expected}")
            }
            FormatError::BadPoint { point, source } => write!(f, "point {point}: {source}"),
            FormatError::Empty => write!(f, "instance has no points"),
            FormatError::NonFinite { point } => write!(f, "point {point}: non-finite coordinate"),
        }
    }
}

impl std::error::Error for FormatError {}

impl JsonInstance {
    /// Validates and converts to the library representation.
    pub fn to_set(&self) -> Result<UncertainSet<Point>, FormatError> {
        if self.points.is_empty() {
            return Err(FormatError::Empty);
        }
        let mut points = Vec::with_capacity(self.points.len());
        for (i, jp) in self.points.iter().enumerate() {
            let mut locs = Vec::with_capacity(jp.locations.len());
            for loc in &jp.locations {
                if loc.len() != self.dim {
                    return Err(FormatError::DimMismatch {
                        point: i,
                        got: loc.len(),
                        expected: self.dim,
                    });
                }
                if loc.iter().any(|c| !c.is_finite()) {
                    return Err(FormatError::NonFinite { point: i });
                }
                locs.push(Point::new(loc.clone()));
            }
            let up = UncertainPoint::new(locs, jp.probs.clone())
                .map_err(|source| FormatError::BadPoint { point: i, source })?;
            points.push(up);
        }
        Ok(UncertainSet::new(points))
    }

    /// Converts a library set into the disk format.
    pub fn from_set(set: &UncertainSet<Point>) -> Self {
        let dim = set.point(0).locations()[0].dim();
        let points = set
            .iter()
            .map(|up| JsonPoint {
                locations: up.locations().iter().map(|p| p.coords().to_vec()).collect(),
                probs: up.probs().to_vec(),
            })
            .collect();
        Self { dim, points }
    }
}

impl JsonSolution {
    /// The centers as library points.
    pub fn center_points(&self) -> Vec<Point> {
        self.centers.iter().map(|c| Point::new(c.clone())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ukc_uncertain::generators::{clustered, ProbModel};

    #[test]
    fn roundtrip_preserves_instance() {
        let set = clustered(3, 8, 3, 2, 2, 4.0, 1.0, ProbModel::Random);
        let json = JsonInstance::from_set(&set);
        let text = serde_json::to_string(&json).unwrap();
        let parsed: JsonInstance = serde_json::from_str(&text).unwrap();
        let back = parsed.to_set().unwrap();
        // Locations roundtrip exactly (serde_json's float_roundtrip
        // feature); probabilities are re-normalized at construction, which
        // can shift the last ulp — compare those within 1e-15.
        assert_eq!(set.n(), back.n());
        for (a, b) in set.iter().zip(back.iter()) {
            assert_eq!(a.locations(), b.locations());
            for (pa, pb) in a.probs().iter().zip(b.probs().iter()) {
                assert!((pa - pb).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn rejects_dim_mismatch() {
        let j = JsonInstance {
            dim: 2,
            points: vec![JsonPoint {
                locations: vec![vec![1.0, 2.0], vec![3.0]],
                probs: vec![0.5, 0.5],
            }],
        };
        assert!(matches!(
            j.to_set(),
            Err(FormatError::DimMismatch { point: 0, got: 1, expected: 2 })
        ));
    }

    #[test]
    fn rejects_bad_probs() {
        let j = JsonInstance {
            dim: 1,
            points: vec![JsonPoint {
                locations: vec![vec![1.0]],
                probs: vec![0.4],
            }],
        };
        assert!(matches!(j.to_set(), Err(FormatError::BadPoint { point: 0, .. })));
    }

    #[test]
    fn rejects_empty_and_non_finite() {
        let j = JsonInstance { dim: 1, points: vec![] };
        assert!(matches!(j.to_set(), Err(FormatError::Empty)));
        let j = JsonInstance {
            dim: 1,
            points: vec![JsonPoint {
                locations: vec![vec![f64::NAN]],
                probs: vec![1.0],
            }],
        };
        assert!(matches!(j.to_set(), Err(FormatError::NonFinite { point: 0 })));
    }
}
