//! Minimal `--flag value` / `--flag=value` argument parsing (no external
//! parser crates; the allowed dependency set has none, and the surface is
//! small).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` / `--key=value`
/// options.
#[derive(Debug)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    opts: HashMap<String, String>,
}

/// Argument errors with enough context for a usage message.
#[derive(Debug, PartialEq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// A `--flag` had no value.
    MissingValue(String),
    /// A positional argument appeared where a flag was expected.
    Unexpected(String),
    /// The same `--flag` appeared twice (the CLI refuses to guess which
    /// one was meant instead of silently taking the last).
    Duplicate(String),
    /// A required option is absent.
    MissingOption(String),
    /// An option failed to parse.
    BadValue {
        /// Option name.
        key: String,
        /// Raw value.
        value: String,
    },
    /// A path option names something unusable (a file where a directory
    /// is needed, an unwritable location, ...). Caught at startup so the
    /// failure is a usage error, not a mid-serve surprise.
    BadPath {
        /// Option name.
        key: String,
        /// The offending path.
        path: String,
        /// Why it cannot be used.
        reason: String,
    },
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "missing subcommand"),
            ArgError::MissingValue(k) => write!(f, "--{k} needs a value"),
            ArgError::Unexpected(a) => write!(f, "unexpected argument {a}"),
            ArgError::Duplicate(k) => write!(f, "--{k} given more than once"),
            ArgError::MissingOption(k) => write!(f, "required option --{k} missing"),
            ArgError::BadValue { key, value } => write!(f, "--{key}: cannot parse {value:?}"),
            ArgError::BadPath { key, path, reason } => write!(f, "--{key}: {path:?} {reason}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses `argv[1..]`; both `--key value` and `--key=value` spellings
    /// are accepted, duplicates are rejected.
    pub fn parse(argv: impl Iterator<Item = String>) -> Result<Self, ArgError> {
        let mut it = argv.peekable();
        let command = it.next().ok_or(ArgError::MissingCommand)?;
        let mut opts = HashMap::new();
        while let Some(a) = it.next() {
            let body = a
                .strip_prefix("--")
                .ok_or_else(|| ArgError::Unexpected(a.clone()))?;
            let (key, value) = match body.split_once('=') {
                Some((k, v)) => (k.to_string(), v.to_string()),
                None => {
                    let key = body.to_string();
                    let value = it
                        .next()
                        .ok_or_else(|| ArgError::MissingValue(key.clone()))?;
                    (key, value)
                }
            };
            if opts.insert(key.clone(), value).is_some() {
                return Err(ArgError::Duplicate(key));
            }
        }
        Ok(Self { command, opts })
    }

    /// A required string option.
    pub fn required(&self, key: &str) -> Result<&str, ArgError> {
        self.opts
            .get(key)
            .map(|s| s.as_str())
            .ok_or_else(|| ArgError::MissingOption(key.to_string()))
    }

    /// An optional string option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.opts.get(key).map(|s| s.as_str()).unwrap_or(default)
    }

    /// A typed option with a default.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.opts.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                key: key.to_string(),
                value: v.clone(),
            }),
        }
    }

    /// A required typed option.
    pub fn parse_required<T: std::str::FromStr>(&self, key: &str) -> Result<T, ArgError> {
        let v = self.required(key)?;
        v.parse().map_err(|_| ArgError::BadValue {
            key: key.to_string(),
            value: v.to_string(),
        })
    }

    /// An optional strictly-positive integer option (`--threads` and
    /// friends): absent is `None`; `0` and non-numeric values are
    /// [`ArgError::BadValue`] — zero lanes is never a meaningful request,
    /// so the CLI refuses it instead of guessing.
    pub fn parse_positive(&self, key: &str) -> Result<Option<usize>, ArgError> {
        match self.opts.get(key) {
            None => Ok(None),
            Some(v) => match v.parse::<usize>() {
                Ok(n) if n >= 1 => Ok(Some(n)),
                _ => Err(ArgError::BadValue {
                    key: key.to_string(),
                    value: v.clone(),
                }),
            },
        }
    }

    /// Whether `--key` was given at all.
    pub fn has(&self, key: &str) -> bool {
        self.opts.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Args, ArgError> {
        Args::parse(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_and_flags() {
        let a = parse(&["solve", "--k", "3", "--rule", "ep"]).unwrap();
        assert_eq!(a.command, "solve");
        assert_eq!(a.parse_required::<usize>("k").unwrap(), 3);
        assert_eq!(a.get_or("rule", "ed"), "ep");
        assert_eq!(a.get_or("solver", "gonzalez"), "gonzalez");
    }

    #[test]
    fn parses_equals_syntax() {
        let a = parse(&["solve", "--k=3", "--rule=ep", "--out", "x.json"]).unwrap();
        assert_eq!(a.parse_required::<usize>("k").unwrap(), 3);
        assert_eq!(a.get_or("rule", "ed"), "ep");
        assert_eq!(a.required("out").unwrap(), "x.json");
        // `--key=` is an explicit empty value, not an error.
        let a = parse(&["solve", "--note="]).unwrap();
        assert_eq!(a.required("note").unwrap(), "");
        // Values may contain '=' themselves.
        let a = parse(&["solve", "--filter=a=b"]).unwrap();
        assert_eq!(a.required("filter").unwrap(), "a=b");
    }

    #[test]
    fn rejects_duplicates() {
        assert_eq!(
            parse(&["solve", "--k", "3", "--k", "4"]).unwrap_err(),
            ArgError::Duplicate("k".into())
        );
        // Mixed spellings of the same flag are still duplicates.
        assert_eq!(
            parse(&["solve", "--k=3", "--k", "4"]).unwrap_err(),
            ArgError::Duplicate("k".into())
        );
    }

    #[test]
    fn errors_are_specific() {
        assert_eq!(parse(&[]).unwrap_err(), ArgError::MissingCommand);
        assert_eq!(
            parse(&["solve", "--k"]).unwrap_err(),
            ArgError::MissingValue("k".into())
        );
        assert_eq!(
            parse(&["solve", "k", "3"]).unwrap_err(),
            ArgError::Unexpected("k".into())
        );
        let a = parse(&["solve", "--k", "x"]).unwrap();
        assert!(matches!(
            a.parse_required::<usize>("k"),
            Err(ArgError::BadValue { .. })
        ));
        assert!(matches!(
            a.required("instance"),
            Err(ArgError::MissingOption(_))
        ));
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&["generate"]).unwrap();
        assert_eq!(a.parse_or("seed", 7u64).unwrap(), 7);
        assert_eq!(a.parse_or("n", 40usize).unwrap(), 40);
    }

    #[test]
    fn bad_path_formats_with_key_path_and_reason() {
        let e = ArgError::BadPath {
            key: "data-dir".into(),
            path: "/tmp/x".into(),
            reason: "exists but is not a directory".into(),
        };
        assert_eq!(
            e.to_string(),
            "--data-dir: \"/tmp/x\" exists but is not a directory"
        );
    }

    #[test]
    fn parse_positive_rejects_zero_and_garbage() {
        let a = parse(&["solve", "--threads", "4"]).unwrap();
        assert_eq!(a.parse_positive("threads").unwrap(), Some(4));
        assert!(a.has("threads"));
        let a = parse(&["solve"]).unwrap();
        assert_eq!(a.parse_positive("threads").unwrap(), None);
        assert!(!a.has("threads"));
        for bad in ["0", "-1", "two", "1.5", ""] {
            let a = parse(&["solve", &format!("--threads={bad}")]).unwrap();
            assert_eq!(
                a.parse_positive("threads").unwrap_err(),
                ArgError::BadValue {
                    key: "threads".into(),
                    value: bad.into()
                },
                "{bad:?}"
            );
        }
    }
}
