//! `ukc` — command-line interface for uncertain k-center instances.
//!
//! ```text
//! ukc generate --workload clustered --n 40 --z 4 --dim 2 --seed 7 --out inst.json
//! ukc generate --n 10000 --format ndjson --out feed.ndjson    # one point per line
//! ukc solve    --instance inst.json --k 3 --rule ep --solver gonzalez --out sol.json
//! ukc solve    --instance inst.json --k=3 --format json        # machine-readable report
//! ukc solve    --instance inst.json --k 3 --threads 4          # intra-solve pool lanes
//! ukc solve    --instance inst.json --k 3 --kernel tiled       # distance kernel (scalar|blocked|tiled)
//! ukc solve    --instance inst.json --k 3 --assignment weighted # additively-weighted (Apollonius) mode
//! ukc solve    --instance grown.json --k 3 --base prior.json   # warm start from a prior solution
//! ukc loo      --instance inst.json --k 3                      # batch leave-one-out sweep
//! ukc batch    --instances a.json,b.json,c.json --k 3 --threads 4
//! ukc stream   --k 8 < feed.ndjson                             # memory-bounded streaming
//! ukc stream   --k 8 --input feed.ndjson --chunk 1024 --budget 64
//! ukc evaluate --instance inst.json --solution sol.json
//! ukc bound    --instance inst.json --k 3
//! ukc info     --instance inst.json
//! ukc kmedian  --instance inst.json --k 3
//! ukc kmeans   --instance inst.json --k 3 --seed 1
//! ukc serve    --addr 127.0.0.1:8080 --workers 4 --cache-cap 256
//! ukc serve    --addr 127.0.0.1:8080 --threads 4               # alias of --workers
//! ukc serve    --addr 127.0.0.1:8080 --kernel tiled            # default kernel for requests
//!                                                              # without an explicit "kernel"
//! ukc serve    --addr 127.0.0.1:8080 --data-dir ./ukc-data     # durable across restarts
//! ukc serve    --addr 127.0.0.1:8080 --shards 127.0.0.1:8081,127.0.0.1:8082  # coordinator
//! ukc client   --addr 127.0.0.1:8080 --path /healthz
//! ukc client   --addr 127.0.0.1:8080 --path /healthz --timeout 2 --retries 3
//! ukc client   --addr 127.0.0.1:8080 --instance inst.json --k 3   # one-shot /solve
//! ukc client   --addr 127.0.0.1:8080 --instance inst.json --k 3 --base 1a2b3c4d5e6f7081
//! ukc cluster  status --server 127.0.0.1:8080
//! ukc cluster  add    --server 127.0.0.1:8080 --addr 127.0.0.1:8083
//! ukc cluster  remove --server 127.0.0.1:8080 --id 2
//! ```
//!
//! `ukc stream` reads line-delimited JSON (one uncertain point per
//! line: `{"locations": [[...], ...], "probs": [...]}`; `probs`
//! defaults to uniform) from `--input` or stdin, folds it through the
//! memory-bounded `ukc_stream::StreamSolver` in `--chunk`-sized epochs,
//! and emits one JSON report (centers, certified bounds, state digest,
//! memory high-water mark) on stdout.
//!
//! `--threads N` caps how many lanes of the process-wide worker pool a
//! solve (or a batch wave, or the server's waves) may occupy. `N = 1` is
//! fully sequential; any `N` produces bit-identical results — threads
//! are a resource knob, never a semantics knob. `0` is rejected.
//!
//! All subcommands read/write the JSON formats of [`format`]; numeric
//! results print on stdout, diagnostics on stderr, non-zero exit on error.
//! `--format json` (on `solve` and `batch`) emits the full solution +
//! instrumentation report as one JSON document on stdout.

mod args;

use args::Args;
use ukc_core::{
    solve_batch_threads, AssignmentRule, CertainStrategy, Problem, Solution, SolverConfig,
};
use ukc_json::format::{solution_document, JsonInstance, JsonSolution};
use ukc_json::Json;
use ukc_metric::{Euclidean, Kernel, Point};
use ukc_uncertain::generators::{
    clustered, line_instance, ring, two_scale, uniform_box, ProbModel,
};
use ukc_uncertain::{ecost_assigned, expected_point, UncertainSet};

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    // `ukc cluster <status|add|remove>` carries its action as a
    // positional word; rewrite it to --action so the strict flag parser
    // stays positional-free everywhere else.
    if argv.first().map(String::as_str) == Some("cluster")
        && argv.get(1).is_some_and(|a| !a.starts_with("--"))
    {
        let action = argv.remove(1);
        argv.insert(1, format!("--action={action}"));
    }
    let code = match Args::parse(argv.into_iter()) {
        Ok(a) => run(&a),
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            2
        }
    };
    std::process::exit(code);
}

fn usage() {
    eprintln!(
        "usage: ukc <generate|solve|loo|batch|stream|evaluate|bound|info|kmedian|kmeans|serve|client|cluster> [--flag value | --flag=value ...]\n\
         see `cargo doc -p ukc-cli` or the module docs for the full flag list"
    );
}

fn run(a: &Args) -> i32 {
    let result = match a.command.as_str() {
        "generate" => cmd_generate(a),
        "solve" => cmd_solve(a),
        "loo" => cmd_loo(a),
        "batch" => cmd_batch(a),
        "stream" => cmd_stream(a),
        "evaluate" => cmd_evaluate(a),
        "bound" => cmd_bound(a),
        "info" => cmd_info(a),
        "kmedian" => cmd_kmedian(a),
        "kmeans" => cmd_kmeans(a),
        "serve" => cmd_serve(a),
        "client" => cmd_client(a),
        "cluster" => cmd_cluster(a),
        other => {
            eprintln!("error: unknown subcommand {other}");
            usage();
            return 2;
        }
    };
    match result {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

type CmdResult = Result<(), Box<dyn std::error::Error>>;

fn load_instance_at(path: &str) -> Result<UncertainSet<Point>, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    let json = JsonInstance::parse(&text)?;
    Ok(json.to_set()?)
}

fn load_instance(a: &Args) -> Result<UncertainSet<Point>, Box<dyn std::error::Error>> {
    load_instance_at(a.required("instance")?)
}

fn prob_model(a: &Args) -> Result<ProbModel, Box<dyn std::error::Error>> {
    match a.get_or("probs", "random") {
        "uniform" => Ok(ProbModel::Uniform),
        "random" => Ok(ProbModel::Random),
        "heavy" | "heavy-tail" => Ok(ProbModel::HeavyTail),
        other => Err(format!("unknown prob model {other} (uniform|random|heavy)").into()),
    }
}

/// Builds a [`SolverConfig`] from the shared `--rule`, `--solver`,
/// `--eps`, `--rounds`, `--seed`, and `--threads` flags.
fn solver_config(a: &Args) -> Result<SolverConfig, Box<dyn std::error::Error>> {
    solver_config_with_seed_default(a, 0)
}

/// Like [`solver_config`] with a caller-chosen `--seed` default
/// (`kmeans` has historically defaulted to seed 1).
fn solver_config_with_seed_default(
    a: &Args,
    default_seed: u64,
) -> Result<SolverConfig, Box<dyn std::error::Error>> {
    let rule = match a.get_or("rule", "ep") {
        "ed" => AssignmentRule::ExpectedDistance,
        "ep" => AssignmentRule::ExpectedPoint,
        "oc" => AssignmentRule::OneCenter,
        other => return Err(format!("unknown rule {other} (ed|ep|oc)").into()),
    };
    let strategy = match a.get_or("solver", "gonzalez") {
        "gonzalez" => CertainStrategy::Gonzalez,
        "local-search" => CertainStrategy::GonzalezLocalSearch {
            rounds: a.parse_or("rounds", 50usize)?,
        },
        "grid" => CertainStrategy::Grid,
        "exact" => CertainStrategy::ExactDiscrete,
        other => {
            return Err(format!("unknown solver {other} (gonzalez|local-search|grid|exact)").into())
        }
    };
    let mut builder = SolverConfig::builder()
        .rule(rule)
        .strategy(strategy)
        .eps(a.parse_or("eps", 0.25f64)?)
        .seed(a.parse_or("seed", default_seed)?);
    // --kernel picks the batched distance kernel (scalar|blocked|tiled);
    // absent keeps the config default (blocked).
    if let Some(kernel) = kernel_flag(a)? {
        builder = builder.kernel(kernel);
    }
    // --assignment plain|weighted picks the assignment mode; absent keeps
    // the config default (plain).
    if a.has("assignment") {
        let raw = a.required("assignment")?;
        match ukc_core::AssignmentMode::parse(raw) {
            Some(mode) => builder = builder.assignment(mode),
            None => {
                return Err(args::ArgError::BadValue {
                    key: "assignment".into(),
                    value: raw.into(),
                }
                .into())
            }
        }
    }
    // --threads=N caps the solve's pool lanes (0/non-numeric rejected);
    // absent means auto (UKC_THREADS / available parallelism).
    if let Some(threads) = a.parse_positive("threads")? {
        builder = builder.threads(threads);
    }
    Ok(builder.build()?)
}

/// Parses the shared `--kernel scalar|blocked|tiled` flag. Absent means
/// `None` (the caller keeps its default); an unrecognized name is the
/// typed [`args::ArgError::BadValue`] usage error.
fn kernel_flag(a: &Args) -> Result<Option<Kernel>, args::ArgError> {
    if !a.has("kernel") {
        return Ok(None);
    }
    let raw = a.required("kernel")?;
    match Kernel::parse(raw) {
        Some(kernel) => Ok(Some(kernel)),
        None => Err(args::ArgError::BadValue {
            key: "kernel".into(),
            value: raw.into(),
        }),
    }
}

/// Output format selector shared by `solve` and `batch`.
fn output_format(a: &Args) -> Result<&str, Box<dyn std::error::Error>> {
    match a.get_or("format", "text") {
        f @ ("text" | "json") => Ok(f),
        other => Err(format!("unknown format {other} (text|json)").into()),
    }
}

fn cmd_generate(a: &Args) -> CmdResult {
    let seed: u64 = a.parse_or("seed", 7)?;
    let n: usize = a.parse_or("n", 40)?;
    let z: usize = a.parse_or("z", 4)?;
    let dim: usize = a.parse_or("dim", 2)?;
    let probs = prob_model(a)?;
    let set = match a.get_or("workload", "clustered") {
        "clustered" => {
            let clusters: usize = a.parse_or("clusters", 3)?;
            clustered(seed, n, z, dim, clusters, 5.0, 1.5, probs)
        }
        "uniform" => uniform_box(seed, n, z, dim, 100.0, 2.0, probs),
        "ring" => ring(seed, n, z, 50.0, 0.5, probs),
        "two-scale" => two_scale(seed, n, z, dim, 1.0, 150.0, 0.3),
        "line" => line_instance(seed, n, z, 200.0, 3.0, probs),
        other => return Err(format!("unknown workload {other}").into()),
    };
    let json = JsonInstance::from_set(&set);
    let out = a.get_or("out", "instance.json");
    match a.get_or("format", "json") {
        "json" => std::fs::write(out, json.to_json().pretty())?,
        // One point per line — the `ukc stream` ingestion format.
        "ndjson" => {
            let mut lines = String::new();
            for p in &json.points {
                let point = Json::obj([
                    (
                        "locations",
                        Json::arr(
                            p.locations
                                .iter()
                                .map(|loc| Json::nums(loc.iter().copied())),
                        ),
                    ),
                    ("probs", Json::nums(p.probs.iter().copied())),
                ]);
                lines.push_str(&point.compact());
                lines.push('\n');
            }
            std::fs::write(out, lines)?;
        }
        other => return Err(format!("unknown format {other} (json|ndjson)").into()),
    }
    eprintln!(
        "wrote {out}: n={} z={} dim={}",
        set.n(),
        set.max_z(),
        json.dim
    );
    Ok(())
}

/// One ndjson line -> an uncertain point. `probs` defaults to uniform.
fn parse_ndjson_point(
    line: &str,
    lineno: usize,
) -> Result<ukc_uncertain::UncertainPoint<Point>, Box<dyn std::error::Error>> {
    let context = |what: &str| format!("line {lineno}: {what}");
    let doc = Json::parse(line).map_err(|e| context(&e.to_string()))?;
    let locations = doc
        .get("locations")
        .ok_or_else(|| context("missing \"locations\""))?
        .as_array()
        .ok_or_else(|| context("\"locations\" must be an array of coordinate arrays"))?;
    let mut points = Vec::with_capacity(locations.len());
    for loc in locations {
        let coords: Vec<f64> = loc
            .as_array()
            .ok_or_else(|| context("each location must be a coordinate array"))?
            .iter()
            .map(|c| {
                c.as_f64()
                    .ok_or_else(|| context("coordinates must be numbers"))
            })
            .collect::<Result<_, _>>()?;
        points.push(Point::try_new(coords).map_err(|e| context(&e.to_string()))?);
    }
    let up = match doc.get("probs") {
        Some(probs) => {
            let probs: Vec<f64> = probs
                .as_array()
                .ok_or_else(|| context("\"probs\" must be an array of numbers"))?
                .iter()
                .map(|p| {
                    p.as_f64()
                        .ok_or_else(|| context("probabilities must be numbers"))
                })
                .collect::<Result<_, _>>()?;
            ukc_uncertain::UncertainPoint::new(points, probs)
        }
        None => ukc_uncertain::UncertainPoint::uniform(points),
    };
    Ok(up.map_err(|e| context(&e.to_string()))?)
}

/// `ukc stream`: fold a line-delimited JSON feed through the
/// memory-bounded streaming solver in `--chunk`-sized epochs and emit
/// one report document. `--format json` (the default) prints the full
/// machine-readable report; `text` prints the headline numbers.
fn cmd_stream(a: &Args) -> CmdResult {
    let k: usize = a.parse_required("k")?;
    let config = solver_config(a)?;
    let chunk = a.parse_positive("chunk")?.unwrap_or(4096);
    let format = match a.get_or("format", "json") {
        f @ ("text" | "json") => f,
        other => return Err(format!("unknown format {other} (text|json)").into()),
    };
    let mut builder = ukc_stream::StreamSolver::builder(k).config(config);
    if let Some(budget) = a.parse_positive("budget")? {
        builder = builder.budget(budget);
    }
    let mut solver = builder.build()?;

    use std::io::BufRead;
    let stdin = std::io::stdin();
    let reader: Box<dyn BufRead> = match a.required("input") {
        Ok(path) => Box::new(std::io::BufReader::new(std::fs::File::open(path)?)),
        Err(_) => Box::new(stdin.lock()),
    };
    let mut buffer = Vec::with_capacity(chunk);
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        buffer.push(parse_ndjson_point(line, i + 1)?);
        if buffer.len() == chunk {
            solver.push_chunk(&buffer)?;
            buffer.clear();
        }
    }
    if !buffer.is_empty() {
        solver.push_chunk(&buffer)?;
    }
    if solver.is_empty() {
        return Err("the stream contained no points".into());
    }

    let solution = solver.solution()?;
    let report = &solution.stream;
    let doc = Json::obj([
        ("k", Json::from(k)),
        ("budget", Json::from(solver.budget())),
        ("points", Json::from(report.points as f64)),
        ("epochs", Json::from(report.epochs as f64)),
        ("summary_size", Json::from(report.summary_len)),
        ("threshold", Json::from(report.threshold)),
        ("digest", Json::from(ukc_core::digest_hex(report.digest))),
        ("memory_peak_points", Json::from(report.memory_peak_points)),
        ("distance_evals", Json::from(report.distance_evals as f64)),
        ("merges", Json::from(report.merges as f64)),
        (
            "centers",
            Json::arr(
                solution
                    .centers
                    .iter()
                    .map(|c| Json::nums(c.coords().iter().copied())),
            ),
        ),
        ("certain_radius", Json::from(solution.certain_radius)),
        ("radius_bound", Json::from(solution.radius_bound)),
        ("lower_bound", Json::from(solution.lower_bound)),
        (
            "finalize_report",
            ukc_json::format::report_json(&solution.finalize),
        ),
    ]);
    if let Ok(out) = a.required("out") {
        std::fs::write(out, doc.pretty())?;
        eprintln!("wrote {out}");
    }
    if format == "json" {
        println!("{}", doc.pretty());
        return Ok(());
    }
    println!("points {}", report.points);
    println!(
        "summary_size {} (budget {})",
        report.summary_len,
        solver.budget()
    );
    println!("certain_radius {:.6}", solution.certain_radius);
    println!("radius_bound {:.6}", solution.radius_bound);
    println!("lower_bound {:.6}", solution.lower_bound);
    println!("memory_peak_points {}", report.memory_peak_points);
    println!("digest {}", ukc_core::digest_hex(report.digest));
    Ok(())
}

/// Reconstructs the prior [`Solution`] a `--base <solution.json>` file
/// describes, against the (grown) instance being solved. Solution files
/// do not store representatives; for the append chains `--base` exists
/// for, the prior's representatives are exactly the expected points of
/// the instance's prefix, so they are recomputed from `set` — every
/// other mismatch (wrong `k`, non-prefix instance, stale centers, radius
/// drift) is caught by `warm_start`'s own revalidation and falls back
/// cold with a typed reason.
fn load_prior(
    path: &str,
    set: &UncertainSet<Point>,
) -> Result<Solution<Point>, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    let sol = JsonSolution::parse(&text)?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let certain_radius = doc
        .get("certain_radius")
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{path}: missing \"certain_radius\" (not a ukc solution file?)"))?;
    let n_prior = sol.assignment.len().min(set.n());
    let representatives = set.iter().take(n_prior).map(expected_point).collect();
    Ok(Solution {
        centers: sol.center_points(),
        assignment: sol.assignment.clone(),
        ecost: sol.ecost,
        representatives,
        certain_radius,
        report: ukc_core::Report::default(),
    })
}

fn cmd_solve(a: &Args) -> CmdResult {
    let set = load_instance(a)?;
    let k: usize = a.parse_required("k")?;
    let config = solver_config(a)?;
    let format = output_format(a)?;
    // --base <solution.json> warm-starts from a prior solution of a
    // prefix of this instance; a unusable prior cold-solves with the
    // reason stamped into report.warm.fallback, never an error.
    let prior = match a.required("base") {
        Ok(path) => Some(load_prior(path, &set)?),
        Err(_) => None,
    };
    let problem = Problem::euclidean(set, k)?;
    let sol = match &prior {
        Some(prior) => Solution::warm_start(&problem, &config, prior)?,
        None => problem.solve(&config)?,
    };
    let doc = solution_document(&sol);
    if let Ok(out) = a.required("out") {
        std::fs::write(out, doc.pretty())?;
        eprintln!("wrote {out}");
    }
    if format == "json" {
        println!("{}", doc.pretty());
        return Ok(());
    }
    let lb = sol.report.lower_bound.unwrap_or(0.0);
    println!("ecost {:.6}", sol.ecost);
    println!("lower_bound {lb:.6}");
    println!(
        "ratio_upper_bound {:.4}",
        sol.ecost / lb.max(f64::MIN_POSITIVE)
    );
    println!("certain_radius {:.6}", sol.certain_radius);
    println!(
        "solve_time_ms {:.3} (reps {:.3} / certain {:.3} / assign {:.3} / cost {:.3})",
        sol.report.timings.total.as_secs_f64() * 1e3,
        sol.report.timings.representatives.as_secs_f64() * 1e3,
        sol.report.timings.certain_solve.as_secs_f64() * 1e3,
        sol.report.timings.assignment.as_secs_f64() * 1e3,
        sol.report.timings.cost.as_secs_f64() * 1e3,
    );
    println!("distance_evals {}", sol.report.distance_evals.total());
    if let Some(warm) = &sol.report.warm {
        match &warm.fallback {
            None => println!(
                "warm reused_centers={} evals_saved={}",
                warm.reused_centers, warm.evals_saved
            ),
            Some(reason) => println!("warm fallback={reason}"),
        }
    }
    Ok(())
}

/// `ukc loo`: the batch leave-one-out sweep — all `n` one-point-removed
/// variants of the instance, sharing one point store and one base
/// solution (see [`ukc_core::solve_loo`]). `--format json` emits the
/// full per-variant report; `text` prints the headline numbers.
fn cmd_loo(a: &Args) -> CmdResult {
    let set = load_instance(a)?;
    let k: usize = a.parse_required("k")?;
    let config = solver_config(a)?;
    let format = output_format(a)?;
    let problem = Problem::euclidean(set, k)?;
    let loo = ukc_core::solve_loo(&problem, &config)?;
    let doc = Json::obj([
        ("base", solution_document(&loo.base)),
        (
            "variants",
            Json::arr(loo.variants.iter().map(|v| {
                Json::obj([
                    ("removed", Json::from(v.removed)),
                    ("ecost", Json::from(v.ecost)),
                    ("certain_radius", Json::from(v.certain_radius)),
                    ("reused", Json::from(v.reused)),
                    ("distance_evals", Json::from(v.distance_evals as f64)),
                ])
            })),
        ),
        ("count", Json::from(loo.variants.len())),
        ("reused_variants", Json::from(loo.reused_variants)),
        ("resolved_variants", Json::from(loo.resolved_variants)),
        ("distance_evals", Json::from(loo.distance_evals as f64)),
    ]);
    if let Ok(out) = a.required("out") {
        std::fs::write(out, doc.pretty())?;
        eprintln!("wrote {out}");
    }
    if format == "json" {
        println!("{}", doc.pretty());
        return Ok(());
    }
    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
    for v in &loo.variants {
        min = min.min(v.ecost);
        max = max.max(v.ecost);
    }
    println!("base_ecost {:.6}", loo.base.ecost);
    println!("variants {}", loo.variants.len());
    println!(
        "reused {} resolved {}",
        loo.reused_variants, loo.resolved_variants
    );
    println!("ecost_min {min:.6}");
    println!("ecost_max {max:.6}");
    println!("distance_evals {}", loo.distance_evals);
    Ok(())
}

fn cmd_batch(a: &Args) -> CmdResult {
    let paths: Vec<&str> = a.required("instances")?.split(',').collect();
    let k: usize = a.parse_required("k")?;
    let config = solver_config(a)?;
    let format = output_format(a)?;
    // The same --threads value caps the batch fan-out and (via
    // solver_config) each solve's own lanes — both draw on the one
    // shared pool, so they cooperate rather than multiply.
    let threads = match a.parse_positive("threads")? {
        Some(n) => n,
        None => ukc_pool::default_threads(),
    };
    let mut problems = Vec::with_capacity(paths.len());
    for path in &paths {
        problems.push(Problem::euclidean(load_instance_at(path)?, k)?);
    }
    let results = solve_batch_threads(&problems, &config, threads);
    if format == "json" {
        let items = paths
            .iter()
            .zip(&results)
            .map(|(path, result)| match result {
                Ok(sol) => {
                    let mut doc = solution_document(sol);
                    if let Json::Obj(pairs) = &mut doc {
                        pairs.insert(0, ("instance".into(), Json::from(*path)));
                    }
                    doc
                }
                Err(e) => Json::obj([
                    ("instance", Json::from(*path)),
                    ("error", Json::from(e.to_string())),
                ]),
            });
        println!("{}", Json::arr(items).pretty());
        return Ok(());
    }
    println!(
        "{:<32} {:>12} {:>12} {:>10}",
        "instance", "ecost", "lower_bound", "time_ms"
    );
    let mut failures = 0usize;
    for (path, result) in paths.iter().zip(&results) {
        match result {
            Ok(sol) => println!(
                "{path:<32} {:>12.6} {:>12.6} {:>10.3}",
                sol.ecost,
                sol.report.lower_bound.unwrap_or(0.0),
                sol.report.timings.total.as_secs_f64() * 1e3
            ),
            Err(e) => {
                failures += 1;
                println!("{path:<32} error: {e}");
            }
        }
    }
    if failures > 0 {
        return Err(format!("{failures} of {} instances failed", paths.len()).into());
    }
    Ok(())
}

fn cmd_evaluate(a: &Args) -> CmdResult {
    let set = load_instance(a)?;
    let path = a.required("solution")?;
    let text = std::fs::read_to_string(path)?;
    let sol = JsonSolution::parse(&text)?;
    if sol.assignment.len() != set.n() {
        return Err(format!(
            "solution assigns {} points, instance has {}",
            sol.assignment.len(),
            set.n()
        )
        .into());
    }
    let centers = sol.center_points();
    if let Some(&bad) = sol.assignment.iter().find(|&&x| x >= centers.len()) {
        return Err(format!("assignment references center {bad} of {}", centers.len()).into());
    }
    let cost = ecost_assigned(&set, &centers, &sol.assignment, &Euclidean);
    println!("ecost {cost:.6}");
    if (cost - sol.ecost).abs() > 1e-6 * cost.max(1.0) {
        eprintln!(
            "warning: recorded ecost {} differs from recomputed {cost}",
            sol.ecost
        );
    }
    Ok(())
}

fn cmd_bound(a: &Args) -> CmdResult {
    let set = load_instance(a)?;
    let k: usize = a.parse_required("k")?;
    println!(
        "lower_bound {:.6}",
        ukc_core::lower_bound_euclidean(&set, k)
    );
    Ok(())
}

fn cmd_info(a: &Args) -> CmdResult {
    let set = load_instance(a)?;
    println!("n {}", set.n());
    println!("max_z {}", set.max_z());
    println!("total_locations {}", set.total_locations());
    println!("realizations {}", set.realization_count());
    let dim = set.point(0).locations()[0].dim();
    println!("dim {dim}");
    Ok(())
}

fn cmd_kmedian(a: &Args) -> CmdResult {
    let set = load_instance(a)?;
    let k: usize = a.parse_required("k")?;
    let config = solver_config(a)?;
    let pool = set.location_pool();
    let sol = ukc_extensions::uncertain_kmedian(&set, &pool, k, &Euclidean, &config)?;
    println!("kmedian_cost {:.6}", sol.cost);
    Ok(())
}

/// Validates `--data-dir` before anything binds or opens: the path must
/// be (or be creatable as) a writable directory. A file in the way or an
/// unwritable location is a typed [`args::ArgError::BadPath`] — a usage
/// error and a clean exit, not a mid-serve storage failure.
fn validate_data_dir(a: &Args) -> Result<Option<std::path::PathBuf>, args::ArgError> {
    let Ok(raw) = a.required("data-dir") else {
        return Ok(None);
    };
    let bad = |reason: String| args::ArgError::BadPath {
        key: "data-dir".into(),
        path: raw.to_string(),
        reason,
    };
    let path = std::path::PathBuf::from(raw);
    if path.exists() && !path.is_dir() {
        return Err(bad("exists but is not a directory".into()));
    }
    if !path.is_dir() {
        std::fs::create_dir_all(&path)
            .map_err(|e| bad(format!("cannot be created as a directory ({e})")))?;
    }
    // Touch-and-remove probe: prove writability while we can still fail
    // as an argument error rather than a 503 after the listener binds.
    let probe = path.join(".ukc-write-probe");
    std::fs::write(&probe, b"")
        .and_then(|()| std::fs::remove_file(&probe))
        .map_err(|e| bad(format!("is not writable ({e})")))?;
    Ok(Some(path))
}

/// `ukc serve`: run the HTTP solver service on the calling thread.
/// `--workers` and its alias `--threads` cap the pool lanes one solve
/// wave may occupy (the pool is process-wide and shared with intra-solve
/// parallelism); `--workers 0` means auto, `--threads 0` is rejected.
/// `--data-dir <path>` makes instances and streams durable (recovered on
/// the next boot); `--snapshot-interval <n>` snapshots each stream every
/// `n` pushed epochs (0 disables snapshots, recovery then replays the
/// full log). `--shards a,b,...` runs this server as a **coordinator**
/// over the listed shard servers (see `docs/ARCHITECTURE.md`);
/// `--replicate-after`, `--shard-timeout-ms`, `--shard-retries`, and
/// `--probe-interval-ms` tune replication and shard transport.
/// `--queue-cap <n>` bounds the solve queue (full = `503 overloaded`).
/// `--ingest-queue-cap <n>` bounds queued pushes per stream (full =
/// `429 ingest_overloaded`); `--solve-staleness-ms <ms>` lets stream
/// solution reads inside the budget re-serve the last response
/// (`"stale": true`) instead of re-solving.
fn cmd_serve(a: &Args) -> CmdResult {
    let threads = a.parse_positive("threads")?;
    if threads.is_some() && a.has("workers") {
        return Err("--workers and --threads are aliases; give only one".into());
    }
    let data_dir = validate_data_dir(a)?;
    if data_dir.is_none() && a.has("snapshot-interval") {
        return Err("--snapshot-interval is only meaningful with --data-dir".into());
    }
    let shards: Vec<String> = match a.required("shards") {
        Ok(list) => list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect(),
        Err(_) => Vec::new(),
    };
    if a.has("shards") && shards.is_empty() {
        return Err("--shards needs a comma-separated list of at least one addr".into());
    }
    if shards.is_empty() {
        for flag in [
            "replicate-after",
            "shard-timeout-ms",
            "shard-retries",
            "probe-interval-ms",
        ] {
            if a.has(flag) {
                return Err(format!("--{flag} is only meaningful with --shards").into());
            }
        }
    }
    let defaults = ukc_server::ServerConfig::default();
    let config = ukc_server::ServerConfig {
        addr: a.get_or("addr", "127.0.0.1:8080").to_string(),
        workers: match threads {
            Some(n) => n,
            None => a.parse_or("workers", 0usize)?,
        },
        cache_cap: a.parse_or("cache-cap", 256usize)?,
        kernel: kernel_flag(a)?.unwrap_or(defaults.kernel),
        max_body_bytes: a.parse_or("max-body-bytes", 8 * 1024 * 1024usize)?,
        data_dir,
        snapshot_interval: a.parse_or("snapshot-interval", 16u64)?,
        queue_cap: a.parse_or("queue-cap", defaults.queue_cap)?,
        shards,
        replicate_after: a.parse_or("replicate-after", defaults.replicate_after)?,
        shard_timeout_ms: a.parse_or("shard-timeout-ms", defaults.shard_timeout_ms)?,
        shard_retries: a.parse_or("shard-retries", defaults.shard_retries)?,
        probe_interval_ms: a.parse_or("probe-interval-ms", defaults.probe_interval_ms)?,
        ingest_queue_cap: a.parse_or("ingest-queue-cap", defaults.ingest_queue_cap)?,
        solve_staleness_ms: a.parse_or("solve-staleness-ms", defaults.solve_staleness_ms)?,
        ingest_apply_delay_ms: defaults.ingest_apply_delay_ms,
    };
    ukc_server::serve_blocking(config)?;
    Ok(())
}

/// Builds [`ukc_server::client::ClientOptions`] from the shared
/// `--timeout <seconds>` and `--retries <n>` flags (defaults: no
/// timeout, no retries — exactly the pre-flag behavior).
fn client_options(
    a: &Args,
) -> Result<ukc_server::client::ClientOptions, Box<dyn std::error::Error>> {
    let mut options = ukc_server::client::ClientOptions::default();
    if a.has("timeout") {
        let seconds: f64 = a.parse_required("timeout")?;
        if !(seconds > 0.0 && seconds.is_finite()) {
            return Err("--timeout must be a positive number of seconds".into());
        }
        options.timeout = Some(std::time::Duration::from_secs_f64(seconds));
    }
    options.retries = a.parse_or("retries", 0u32)?;
    Ok(options)
}

/// `ukc client`: a thin smoke client. Either a raw request
/// (`--path [--method] [--body | --body-file]`) or, with `--instance`,
/// a one-shot `POST /solve` built from the shared `--k`/`--rule`/
/// `--solver`/`--eps`/`--seed` flags. `--timeout <seconds>` bounds each
/// attempt; `--retries <n>` retries connect failures with exponential
/// backoff (100ms, 200ms, 400ms, ...).
fn cmd_client(a: &Args) -> CmdResult {
    let addr = a.required("addr")?;
    let (method, path, body) = if let Ok(instance) = a.required("instance") {
        let text = std::fs::read_to_string(instance)?;
        let instance_doc =
            Json::parse(&text).map_err(|e| format!("{instance} is not valid JSON: {e}"))?;
        let k: usize = a.parse_required("k")?;
        let body = Json::obj([
            ("k", Json::from(k)),
            ("rule", Json::from(a.get_or("rule", "ep"))),
            ("solver", Json::from(a.get_or("solver", "gonzalez"))),
            ("eps", Json::from(a.parse_or("eps", 0.25f64)?)),
            ("seed", Json::from(a.parse_or("seed", 0u64)? as f64)),
            ("instance", instance_doc),
        ]);
        // --base <digest> asks the server to warm-start from a prior
        // solve; an unknown base cold-solves with a typed report flag.
        let path = match a.required("base") {
            Ok(base) => format!("/solve?base={base}"),
            Err(_) => "/solve".to_string(),
        };
        ("POST".to_string(), path, Some(body.compact()))
    } else {
        let path = a.get_or("path", "/healthz").to_string();
        let body = if let Ok(file) = a.required("body-file") {
            Some(std::fs::read_to_string(file)?)
        } else {
            a.required("body").ok().map(str::to_string)
        };
        let default_method = if body.is_some() { "POST" } else { "GET" };
        (
            a.get_or("method", default_method).to_uppercase(),
            path,
            body,
        )
    };
    let options = client_options(a)?;
    let response =
        ukc_server::client::request_with(addr, &method, &path, body.as_deref(), &options)?;
    println!("{}", response.body);
    if !response.is_success() {
        return Err(format!("{method} {path} returned status {}", response.status).into());
    }
    Ok(())
}

/// `ukc cluster <status|add|remove> --server <coordinator-addr>`:
/// cluster lifecycle against a running coordinator. `status` prints the
/// registry (role, per-node prefix ranges, liveness, replication
/// gauges); `add --addr host:port` registers a shard by splitting the
/// widest prefix range; `remove --id n` deregisters one, merging its
/// range into a neighbor. Honors `--timeout`/`--retries` like
/// `ukc client`.
fn cmd_cluster(a: &Args) -> CmdResult {
    let server = a.required("server")?;
    let action = a.get_or("action", "status");
    let (method, path, body) = match action {
        "status" => ("GET", "/cluster/status".to_string(), None),
        "add" => {
            let addr = a.required("addr")?;
            (
                "POST",
                "/cluster/nodes".to_string(),
                Some(Json::obj([("addr", Json::from(addr))]).compact()),
            )
        }
        "remove" => {
            let id: usize = a.parse_required("id")?;
            ("DELETE", format!("/cluster/nodes/{id}"), None)
        }
        other => return Err(format!("unknown cluster action {other} (status|add|remove)").into()),
    };
    let options = client_options(a)?;
    let response =
        ukc_server::client::request_with(server, method, &path, body.as_deref(), &options)?;
    println!("{}", response.body);
    if !response.is_success() {
        return Err(format!("cluster {action} returned status {}", response.status).into());
    }
    Ok(())
}

fn cmd_kmeans(a: &Args) -> CmdResult {
    let set = load_instance(a)?;
    let k: usize = a.parse_required("k")?;
    let config = solver_config_with_seed_default(a, 1)?;
    let sol = ukc_extensions::uncertain_kmeans_configured(&set, k, &config)?;
    println!("kmeans_cost {:.6}", sol.cost);
    println!("variance_floor {:.6}", sol.variance_floor);
    Ok(())
}
