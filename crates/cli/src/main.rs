//! `ukc` — command-line interface for uncertain k-center instances.
//!
//! ```text
//! ukc generate --workload clustered --n 40 --z 4 --dim 2 --seed 7 --out inst.json
//! ukc solve    --instance inst.json --k 3 --rule ep --solver gonzalez --out sol.json
//! ukc evaluate --instance inst.json --solution sol.json
//! ukc bound    --instance inst.json --k 3
//! ukc info     --instance inst.json
//! ukc kmedian  --instance inst.json --k 3
//! ukc kmeans   --instance inst.json --k 3 --seed 1
//! ```
//!
//! All subcommands read/write the JSON formats of [`format`]; numeric
//! results print on stdout, diagnostics on stderr, non-zero exit on error.

mod args;
mod format;

use args::Args;
use format::{JsonInstance, JsonSolution};
use ukc_core::{
    lower_bound_euclidean, solve_euclidean, AssignmentRule, CertainSolver,
};
use ukc_kcenter::{ExactOptions, GridOptions};
use ukc_metric::{Euclidean, Point};
use ukc_uncertain::generators::{clustered, line_instance, ring, two_scale, uniform_box, ProbModel};
use ukc_uncertain::{ecost_assigned, UncertainSet};

fn main() {
    let argv = std::env::args().skip(1);
    let code = match Args::parse(argv) {
        Ok(a) => run(&a),
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            2
        }
    };
    std::process::exit(code);
}

fn usage() {
    eprintln!(
        "usage: ukc <generate|solve|evaluate|bound|info|kmedian|kmeans> [--flag value ...]\n\
         see `cargo doc -p ukc-cli` or the module docs for the full flag list"
    );
}

fn run(a: &Args) -> i32 {
    let result = match a.command.as_str() {
        "generate" => cmd_generate(a),
        "solve" => cmd_solve(a),
        "evaluate" => cmd_evaluate(a),
        "bound" => cmd_bound(a),
        "info" => cmd_info(a),
        "kmedian" => cmd_kmedian(a),
        "kmeans" => cmd_kmeans(a),
        other => {
            eprintln!("error: unknown subcommand {other}");
            usage();
            return 2;
        }
    };
    match result {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

type CmdResult = Result<(), Box<dyn std::error::Error>>;

fn load_instance(a: &Args) -> Result<UncertainSet<Point>, Box<dyn std::error::Error>> {
    let path = a.required("instance")?;
    let text = std::fs::read_to_string(path)?;
    let json: JsonInstance = serde_json::from_str(&text)?;
    Ok(json.to_set()?)
}

fn prob_model(a: &Args) -> Result<ProbModel, Box<dyn std::error::Error>> {
    match a.get_or("probs", "random") {
        "uniform" => Ok(ProbModel::Uniform),
        "random" => Ok(ProbModel::Random),
        "heavy" | "heavy-tail" => Ok(ProbModel::HeavyTail),
        other => Err(format!("unknown prob model {other} (uniform|random|heavy)").into()),
    }
}

fn cmd_generate(a: &Args) -> CmdResult {
    let seed: u64 = a.parse_or("seed", 7)?;
    let n: usize = a.parse_or("n", 40)?;
    let z: usize = a.parse_or("z", 4)?;
    let dim: usize = a.parse_or("dim", 2)?;
    let probs = prob_model(a)?;
    let set = match a.get_or("workload", "clustered") {
        "clustered" => {
            let clusters: usize = a.parse_or("clusters", 3)?;
            clustered(seed, n, z, dim, clusters, 5.0, 1.5, probs)
        }
        "uniform" => uniform_box(seed, n, z, dim, 100.0, 2.0, probs),
        "ring" => ring(seed, n, z, 50.0, 0.5, probs),
        "two-scale" => two_scale(seed, n, z, dim, 1.0, 150.0, 0.3),
        "line" => line_instance(seed, n, z, 200.0, 3.0, probs),
        other => return Err(format!("unknown workload {other}").into()),
    };
    let json = JsonInstance::from_set(&set);
    let out = a.get_or("out", "instance.json");
    std::fs::write(out, serde_json::to_string_pretty(&json)?)?;
    eprintln!("wrote {out}: n={} z={} dim={}", set.n(), set.max_z(), json.dim);
    Ok(())
}

fn cmd_solve(a: &Args) -> CmdResult {
    let set = load_instance(a)?;
    let k: usize = a.parse_required("k")?;
    let rule = match a.get_or("rule", "ep") {
        "ed" => AssignmentRule::ExpectedDistance,
        "ep" => AssignmentRule::ExpectedPoint,
        "oc" => AssignmentRule::OneCenter,
        other => return Err(format!("unknown rule {other} (ed|ep|oc)").into()),
    };
    let solver = match a.get_or("solver", "gonzalez") {
        "gonzalez" => CertainSolver::Gonzalez,
        "local-search" => CertainSolver::GonzalezLocalSearch { rounds: 50 },
        "grid" => {
            let eps: f64 = a.parse_or("eps", 0.25)?;
            CertainSolver::Grid(GridOptions { eps, ..Default::default() })
        }
        "exact" => CertainSolver::ExactDiscrete(ExactOptions::default()),
        other => {
            return Err(format!("unknown solver {other} (gonzalez|local-search|grid|exact)").into())
        }
    };
    let sol = solve_euclidean(&set, k, rule, solver);
    let lb = lower_bound_euclidean(&set, k);
    let json = JsonSolution {
        centers: sol.centers.iter().map(|c| c.coords().to_vec()).collect(),
        assignment: sol.assignment.clone(),
        ecost: sol.ecost,
        lower_bound: lb,
        method: format!("{rule:?}+{}", a.get_or("solver", "gonzalez")),
    };
    if let Ok(out) = a.required("out") {
        std::fs::write(out, serde_json::to_string_pretty(&json)?)?;
        eprintln!("wrote {out}");
    }
    println!("ecost {:.6}", sol.ecost);
    println!("lower_bound {:.6}", lb);
    println!("ratio_upper_bound {:.4}", sol.ecost / lb.max(f64::MIN_POSITIVE));
    Ok(())
}

fn cmd_evaluate(a: &Args) -> CmdResult {
    let set = load_instance(a)?;
    let path = a.required("solution")?;
    let text = std::fs::read_to_string(path)?;
    let sol: JsonSolution = serde_json::from_str(&text)?;
    if sol.assignment.len() != set.n() {
        return Err(format!(
            "solution assigns {} points, instance has {}",
            sol.assignment.len(),
            set.n()
        )
        .into());
    }
    let centers = sol.center_points();
    if let Some(&bad) = sol.assignment.iter().find(|&&x| x >= centers.len()) {
        return Err(format!("assignment references center {bad} of {}", centers.len()).into());
    }
    let cost = ecost_assigned(&set, &centers, &sol.assignment, &Euclidean);
    println!("ecost {cost:.6}");
    if (cost - sol.ecost).abs() > 1e-6 * cost.max(1.0) {
        eprintln!(
            "warning: recorded ecost {} differs from recomputed {cost}",
            sol.ecost
        );
    }
    Ok(())
}

fn cmd_bound(a: &Args) -> CmdResult {
    let set = load_instance(a)?;
    let k: usize = a.parse_required("k")?;
    println!("lower_bound {:.6}", lower_bound_euclidean(&set, k));
    Ok(())
}

fn cmd_info(a: &Args) -> CmdResult {
    let set = load_instance(a)?;
    println!("n {}", set.n());
    println!("max_z {}", set.max_z());
    println!("total_locations {}", set.total_locations());
    println!("realizations {}", set.realization_count());
    let dim = set.point(0).locations()[0].dim();
    println!("dim {dim}");
    Ok(())
}

fn cmd_kmedian(a: &Args) -> CmdResult {
    let set = load_instance(a)?;
    let k: usize = a.parse_required("k")?;
    let pool = set.location_pool();
    let sol = ukc_extensions::uncertain_kmedian_local_search(&set, &pool, k, &Euclidean, 50);
    println!("kmedian_cost {:.6}", sol.cost);
    Ok(())
}

fn cmd_kmeans(a: &Args) -> CmdResult {
    let set = load_instance(a)?;
    let k: usize = a.parse_required("k")?;
    let seed: u64 = a.parse_or("seed", 1)?;
    let sol = ukc_extensions::uncertain_kmeans(&set, k, seed, 6, 100);
    println!("kmeans_cost {:.6}", sol.cost);
    println!("variance_floor {:.6}", sol.variance_floor);
    Ok(())
}
