//! Warm-start and leave-one-out equivalence against the cold reference
//! pipeline.
//!
//! The incremental layer's contract: warm results satisfy the same
//! approximation bounds as cold solves, fall back cold (typed, never an
//! error) on any structural mismatch, stay bit-identical across thread
//! counts and kernels, and leave-one-out variants agree exactly with `n`
//! independent cold solves of the reduced instances.

use ukc_core::{solve_loo, AssignmentRule, Problem, Solution, SolverConfig};
use ukc_metric::Kernel;
use ukc_metric::Point;
use ukc_uncertain::generators::{clustered, ProbModel};
use ukc_uncertain::{UncertainPoint, UncertainSet};

/// A clustered instance split into a base prefix and an appended tail
/// drawn around the same cluster sites, so warm starts genuinely accept.
fn split_instance(
    seed: u64,
    n_total: usize,
    n_base: usize,
    z: usize,
    clusters: usize,
) -> (UncertainSet<Point>, UncertainSet<Point>) {
    let full = clustered(seed, n_total, z, 2, clusters, 60.0, 0.8, ProbModel::Random);
    let points = full.points().to_vec();
    let base = UncertainSet::new(points[..n_base].to_vec());
    (base, full)
}

fn warm_of(solution: &Solution<Point>) -> &ukc_core::WarmStats {
    solution
        .report
        .warm
        .as_ref()
        .expect("warm_start always stamps WarmStats")
}

#[test]
fn warm_resolve_of_unchanged_instance_is_bit_identical_and_cheap() {
    let (_, full) = split_instance(11, 300, 300, 2, 5);
    let problem = Problem::euclidean(full, 5).unwrap();
    let config = SolverConfig::default();
    let cold = problem.solve(&config).unwrap();
    let warm = Solution::warm_start(&problem, &config, &cold).unwrap();

    let stats = warm_of(&warm);
    assert_eq!(stats.fallback, None);
    assert_eq!(stats.reused_centers, 5);
    assert!(stats.evals_saved > 0);
    assert!(stats.stages_skipped.contains(&"certain_solve"));

    assert_eq!(warm.ecost.to_bits(), cold.ecost.to_bits());
    assert_eq!(warm.certain_radius.to_bits(), cold.certain_radius.to_bits());
    assert_eq!(warm.assignment, cold.assignment);
    for (w, c) in warm.centers.iter().zip(&cold.centers) {
        assert_eq!(w.coords(), c.coords());
    }
    // The re-solve skipped the Θ(n·k) certain stage entirely.
    assert!(
        warm.report.distance_evals.total() * 3 < cold.report.distance_evals.total(),
        "warm spent {} evals, cold {}",
        warm.report.distance_evals.total(),
        cold.report.distance_evals.total()
    );
}

#[test]
fn warm_append_meets_cold_approximation_bounds() {
    let (base, full) = split_instance(23, 330, 300, 2, 6);
    let config = SolverConfig::default();
    let prior = Problem::euclidean(base, 6).unwrap().solve(&config).unwrap();
    let grown = Problem::euclidean(full, 6).unwrap();
    let warm = Solution::warm_start(&grown, &config, &prior).unwrap();
    let cold = grown.solve(&config).unwrap();

    let stats = warm_of(&warm);
    assert_eq!(stats.fallback, None, "append within clusters should accept");
    assert_eq!(stats.reused_centers, 6);

    // The separation certificate guarantees the reused centers stay a
    // factor-2 approximation on the representatives; cold Gonzalez's
    // radius lower-bounds the certain optimum, so warm ≤ 2 · cold.
    assert!(
        warm.certain_radius <= 2.0 * cold.certain_radius + 1e-9,
        "warm radius {} vs cold {}",
        warm.certain_radius,
        cold.certain_radius
    );
    // The exact expected cost is bracketed by the certified lower bound,
    // like every cold solve.
    let lb = cold.report.lower_bound.unwrap();
    assert!(warm.ecost >= lb - 1e-9);
    assert!(warm.ecost.is_finite() && warm.ecost > 0.0);
    // And the warm report's own lower bound is the same certificate.
    assert_eq!(
        warm.report.lower_bound.unwrap().to_bits(),
        lb.to_bits(),
        "the lower bound is a pure function of the instance"
    );
}

#[test]
fn warm_start_after_one_percent_append_saves_5x_on_100k_points() {
    // The acceptance workload: 100k points, 1% append, k = 16.
    let (base, full) = split_instance(1, 101_000, 100_000, 1, 16);
    let config = SolverConfig::builder().lower_bound(false).build().unwrap();
    let prior = Problem::euclidean(base, 16)
        .unwrap()
        .solve(&config)
        .unwrap();
    let grown = Problem::euclidean(full, 16).unwrap();
    let warm = Solution::warm_start(&grown, &config, &prior).unwrap();
    let cold = grown.solve(&config).unwrap();

    let stats = warm_of(&warm);
    assert_eq!(stats.fallback, None);
    let warm_evals = warm.report.distance_evals.total();
    let cold_evals = cold.report.distance_evals.total();
    assert!(
        cold_evals >= 5 * warm_evals,
        "warm must save ≥5×: warm {warm_evals}, cold {cold_evals}"
    );
    assert!(warm.certain_radius <= 2.0 * cold.certain_radius + 1e-9);
}

#[test]
fn warm_start_falls_back_on_perturbed_prefix() {
    let (base, full) = split_instance(31, 220, 200, 2, 4);
    let config = SolverConfig::default();
    let prior = Problem::euclidean(base, 4).unwrap().solve(&config).unwrap();

    // Perturb one prefix point: this is no longer an append.
    let mut points = full.points().to_vec();
    let perturbed = points[17].map_locations(|p| {
        let mut c = p.coords().to_vec();
        c[0] += 0.5;
        Point::new(c)
    });
    points[17] = perturbed;
    let perturbed_problem = Problem::euclidean_points(points, 4).unwrap();

    let warm = Solution::warm_start(&perturbed_problem, &config, &prior).unwrap();
    let stats = warm_of(&warm);
    assert_eq!(stats.fallback, Some("prefix_mismatch"));
    assert_eq!(stats.reused_centers, 0);

    // The fallback *is* the cold solve, bit for bit.
    let cold = perturbed_problem.solve(&config).unwrap();
    assert_eq!(warm.ecost.to_bits(), cold.ecost.to_bits());
    assert_eq!(warm.certain_radius.to_bits(), cold.certain_radius.to_bits());
    assert_eq!(warm.assignment, cold.assignment);
}

#[test]
fn warm_start_falls_back_on_structural_mismatches() {
    let (base, full) = split_instance(41, 120, 100, 2, 4);
    let config = SolverConfig::default();
    let prior = Problem::euclidean(base.clone(), 4)
        .unwrap()
        .solve(&config)
        .unwrap();
    let grown = Problem::euclidean(full, 4).unwrap();

    // Unsupported rule.
    let ed = SolverConfig::builder()
        .rule(AssignmentRule::ExpectedDistance)
        .build()
        .unwrap();
    let warm = Solution::warm_start(&grown, &ed, &prior).unwrap();
    assert_eq!(warm_of(&warm).fallback, Some("config_unsupported"));

    // k mismatch.
    let k3 = Problem::euclidean(base, 3).unwrap();
    let prior_k3 = k3.solve(&config).unwrap();
    let warm = Solution::warm_start(&grown, &config, &prior_k3).unwrap();
    assert_eq!(warm_of(&warm).fallback, Some("k_mismatch"));

    // A prior larger than the problem is not a prefix.
    let shrunk =
        Problem::euclidean(UncertainSet::new(grown.set().points()[..50].to_vec()), 4).unwrap();
    let grown_prior = grown.solve(&config).unwrap();
    let warm = Solution::warm_start(&shrunk, &config, &grown_prior).unwrap();
    assert_eq!(warm_of(&warm).fallback, Some("prior_shape"));
}

#[test]
fn warm_results_are_bit_identical_across_threads_and_count_stable_across_kernels() {
    let (base, full) = split_instance(53, 260, 240, 2, 5);
    let mut eval_counts = Vec::new();
    for kernel in Kernel::ALL {
        let mut per_thread = Vec::new();
        for threads in [1usize, 4] {
            let config = SolverConfig::builder()
                .kernel(kernel)
                .threads(threads)
                .build()
                .unwrap();
            let prior = Problem::euclidean(base.clone(), 5)
                .unwrap()
                .solve(&config)
                .unwrap();
            let grown = Problem::euclidean(full.clone(), 5).unwrap();
            let warm = Solution::warm_start(&grown, &config, &prior).unwrap();
            assert_eq!(warm_of(&warm).fallback, None, "kernel {kernel:?}");
            per_thread.push((
                warm.ecost.to_bits(),
                warm.certain_radius.to_bits(),
                warm.assignment.clone(),
                warm.report.distance_evals.total(),
            ));
        }
        assert_eq!(
            per_thread[0], per_thread[1],
            "thread count leaked into warm output under {kernel:?}"
        );
        eval_counts.push(per_thread[0].3);
    }
    // Kernels change arithmetic, never which pairs are evaluated.
    assert!(eval_counts.windows(2).all(|w| w[0] == w[1]));
}

/// The cold reference for one leave-one-out variant: an independent
/// solve of the instance with point `i` removed.
fn cold_variant(
    set: &UncertainSet<Point>,
    k: usize,
    config: &SolverConfig,
    i: usize,
) -> Solution<Point> {
    let points: Vec<UncertainPoint<Point>> = set
        .iter()
        .enumerate()
        .filter(|&(j, _)| j != i)
        .map(|(_, up)| up.clone())
        .collect();
    Problem::euclidean_points(points, k)
        .unwrap()
        .solve(config)
        .unwrap()
}

#[test]
fn loo_variants_match_independent_cold_solves_bit_exactly() {
    let set = clustered(67, 60, 2, 2, 4, 40.0, 0.8, ProbModel::Random);
    let problem = Problem::euclidean(set.clone(), 4).unwrap();
    let config = SolverConfig::default();
    let loo = solve_loo(&problem, &config).unwrap();

    assert_eq!(loo.variants.len(), 60);
    assert!(loo.reused_variants >= 60 - 2 * 4, "most variants reuse");
    assert_eq!(loo.reused_variants + loo.resolved_variants, 60);

    let mut independent_evals = 0u64;
    for variant in &loo.variants {
        let cold = cold_variant(&set, 4, &config, variant.removed);
        independent_evals += cold.report.distance_evals.total();
        assert_eq!(
            variant.ecost.to_bits(),
            cold.ecost.to_bits(),
            "variant {} (reused: {})",
            variant.removed,
            variant.reused
        );
        assert_eq!(
            variant.certain_radius.to_bits(),
            cold.certain_radius.to_bits(),
            "variant {} (reused: {})",
            variant.removed,
            variant.reused
        );
    }
    // Sharing one store and one base solution beats n cold solves.
    assert!(
        loo.distance_evals * 3 < independent_evals,
        "loo spent {} evals, n cold solves {}",
        loo.distance_evals,
        independent_evals
    );
    // Reused variants are free on top of the shared sweeps.
    assert!(loo
        .variants
        .iter()
        .all(|v| !v.reused || v.distance_evals == 0));
}

#[test]
fn loo_is_deterministic_across_threads_and_kernels() {
    let set = clustered(71, 40, 2, 3, 3, 30.0, 0.6, ProbModel::Random);
    let problem = Problem::euclidean(set, 3).unwrap();
    for kernel in Kernel::ALL {
        let mut runs = Vec::new();
        for threads in [1usize, 4] {
            let config = SolverConfig::builder()
                .kernel(kernel)
                .threads(threads)
                .build()
                .unwrap();
            let loo = solve_loo(&problem, &config).unwrap();
            runs.push(
                loo.variants
                    .iter()
                    .map(|v| (v.ecost.to_bits(), v.certain_radius.to_bits(), v.reused))
                    .collect::<Vec<_>>(),
            );
        }
        assert_eq!(runs[0], runs[1], "lane count leaked under {kernel:?}");
    }
}

#[test]
fn loo_general_fallback_covers_other_rules() {
    let set = clustered(83, 24, 2, 2, 3, 25.0, 0.7, ProbModel::Random);
    let problem = Problem::euclidean(set.clone(), 3).unwrap();
    let config = SolverConfig::builder()
        .rule(AssignmentRule::ExpectedDistance)
        .build()
        .unwrap();
    let loo = solve_loo(&problem, &config).unwrap();
    assert_eq!(loo.reused_variants, 0);
    assert_eq!(loo.resolved_variants, 24);
    for variant in &loo.variants {
        let cold = cold_variant(&set, 3, &config, variant.removed);
        assert_eq!(variant.ecost.to_bits(), cold.ecost.to_bits());
        assert_eq!(
            variant.certain_radius.to_bits(),
            cold.certain_radius.to_bits()
        );
    }
}

#[test]
fn loo_rejects_instances_too_small_to_lose_a_point() {
    let set = clustered(91, 3, 1, 2, 3, 10.0, 0.5, ProbModel::Uniform);
    let problem = Problem::euclidean(set, 3).unwrap();
    let err = solve_loo(&problem, &SolverConfig::default()).unwrap_err();
    assert!(matches!(
        err,
        ukc_core::SolveError::KExceedsN { k: 3, n: 2 }
    ));
}
