//! Theorem 2.1 — the expected point as a 1-center.
//!
//! For uncertain points `P₁..P_n` in Euclidean space, the expected point
//! `P̄₁` of *any single one of them* is a 2-approximate 1-center for the
//! whole set:
//!
//! ```text
//! Ecost(P̄₁) ≤ 2·Ecost(c*)        (paper Theorem 2.1)
//! ```
//!
//! computable in O(z) — independent of `n`. The module also provides the
//! numeric reference optimum used to measure the actual ratio in
//! experiment E1.

use ukc_geometry::pattern_search::{pattern_search, PatternSearchOptions};
use ukc_metric::{Euclidean, Kernel, Point, StoreOracle};
use ukc_uncertain::{ecost_unassigned, expected_point, UncertainSet};

/// Theorem 2.1: returns `(P̄_anchor, exact Ecost of it)` where the anchor
/// is the uncertain point whose expected point is used (the paper uses
/// `P₁`; any index is valid and the bound holds for each).
///
/// Runs in O(z) for the construction plus O(N log N) for the exact cost
/// report.
///
/// # Panics
/// Panics when `anchor >= set.n()`.
pub fn expected_point_one_center(set: &UncertainSet<Point>, anchor: usize) -> (Point, f64) {
    assert!(anchor < set.n(), "anchor out of range");
    let center = expected_point(set.point(anchor));
    // Cost sweep over the set's contiguous realization store. The scalar
    // kernel keeps the exact summation order of the pointwise metric, so
    // this reports bit-identical costs to the historical implementation.
    // The per-call store build is O(N·d), strictly below the O(N log N)
    // exact-cost sweep it feeds, so rebuilding per anchor stays cheap.
    let (mut store, set_ids) = set.indexed_store();
    let center_id = store.push_point(&center);
    let oracle = StoreOracle::new(&store, Kernel::Scalar);
    let cost = ecost_unassigned(&set_ids, std::slice::from_ref(&center_id), &oracle);
    (center, cost)
}

/// Numeric reference 1-center: minimizes the exact `Ecost(c)` over
/// `c ∈ ℝ^d` by multi-start compass search. `Ecost` is convex in `c`
/// (a max/expectation of convex functions), so compass search converges to
/// the global optimum; multi-start guards against slow progress from a bad
/// scale guess.
///
/// Returns `(c*, Ecost(c*))`. Intended for experiments, not hot paths:
/// every probe costs an exact `E[max]` evaluation.
pub fn reference_one_center(set: &UncertainSet<Point>) -> (Point, f64) {
    let starts: Vec<Point> = {
        let mut v = Vec::with_capacity(set.n().min(4) + 1);
        // Start from a few expected points and the centroid of them.
        for i in 0..set.n().min(4) {
            v.push(expected_point(set.point(i)));
        }
        let dim = v[0].dim();
        let mut mean = Point::origin(dim);
        for p in &v {
            mean.add_scaled_in_place(1.0 / v.len() as f64, p);
        }
        v.push(mean);
        v
    };
    // Scale the initial step to the data spread.
    let spread = {
        let mut lo = vec![f64::INFINITY; starts[0].dim()];
        let mut hi = vec![f64::NEG_INFINITY; starts[0].dim()];
        for up in set {
            for loc in up.locations() {
                for (i, &c) in loc.coords().iter().enumerate() {
                    lo[i] = lo[i].min(c);
                    hi[i] = hi[i].max(c);
                }
            }
        }
        lo.iter()
            .zip(hi.iter())
            .map(|(l, h)| h - l)
            .fold(0.0f64, f64::max)
            .max(1e-6)
    };
    let opts = PatternSearchOptions {
        initial_step: spread / 2.0,
        min_step: 1e-8 * spread,
        max_evals: 200_000,
    };
    let mut best: Option<(Point, f64)> = None;
    for s in &starts {
        let (x, fx) = pattern_search(
            |c| ecost_unassigned(set, std::slice::from_ref(c), &Euclidean),
            s,
            opts,
        );
        if best.as_ref().is_none_or(|(_, bf)| fx < *bf) {
            best = Some((x, fx));
        }
    }
    best.expect("at least one start")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ukc_uncertain::generators::{clustered, two_scale, uniform_box, ProbModel};

    #[test]
    fn theorem_2_1_factor_two_holds() {
        for seed in 0..8u64 {
            let set = uniform_box(seed, 6, 3, 2, 10.0, 2.0, ProbModel::Random);
            let (_, alg) = expected_point_one_center(&set, 0);
            let (_, opt) = reference_one_center(&set);
            assert!(opt <= alg + 1e-9, "reference must not exceed the algorithm");
            assert!(
                alg <= 2.0 * opt + 1e-6,
                "seed {seed}: alg {alg} > 2 x opt {opt}"
            );
        }
    }

    #[test]
    fn factor_two_holds_for_every_anchor() {
        let set = clustered(3, 5, 4, 2, 2, 3.0, 1.0, ProbModel::HeavyTail);
        let (_, opt) = reference_one_center(&set);
        for anchor in 0..set.n() {
            let (_, alg) = expected_point_one_center(&set, anchor);
            assert!(alg <= 2.0 * opt + 1e-6, "anchor {anchor}: {alg} vs {opt}");
        }
    }

    #[test]
    fn adversarial_two_scale_still_within_two() {
        for seed in 0..5u64 {
            let set = two_scale(seed, 5, 3, 2, 0.5, 50.0, 0.2);
            let (_, alg) = expected_point_one_center(&set, 0);
            let (_, opt) = reference_one_center(&set);
            assert!(alg <= 2.0 * opt + 1e-6, "seed {seed}: {alg} vs {opt}");
        }
    }

    #[test]
    fn single_certain_point_is_exact() {
        use ukc_uncertain::UncertainPoint;
        let set = UncertainSet::new(vec![UncertainPoint::certain(Point::new(vec![3.0, 4.0]))]);
        let (c, cost) = expected_point_one_center(&set, 0);
        assert_eq!(c.coords(), &[3.0, 4.0]);
        assert!(cost.abs() < 1e-12);
    }

    #[test]
    fn reference_beats_or_ties_all_expected_points() {
        let set = uniform_box(9, 5, 3, 2, 10.0, 1.0, ProbModel::Random);
        let (_, opt) = reference_one_center(&set);
        for anchor in 0..set.n() {
            let (_, alg) = expected_point_one_center(&set, anchor);
            assert!(opt <= alg + 1e-9);
        }
    }
}
