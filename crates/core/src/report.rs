//! Per-solve instrumentation: stage timings, distance-evaluation counts,
//! and the certified lower bound.
//!
//! Every [`crate::Problem::solve`] returns a [`Report`] inside its
//! [`crate::Solution`], making each solve self-describing: a serving
//! layer can emit the report as metrics, and a batch driver can attribute
//! wall-clock to pipeline stages without re-profiling.
//!
//! Distance evaluations are counted by wrapping the problem's metric in
//! [`CountingMetric`]; work that bypasses the metric object (the
//! Euclidean grid solver's internal arithmetic) is deliberately not
//! counted and is documented as such on [`Report::distance_evals`].

use std::time::Duration;
use ukc_metric::{DistCounter, DistanceOracle, Metric};

/// Wall-clock time spent in each pipeline stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    /// Stage 1: representative construction (`P̄` / `P̃`).
    pub representatives: Duration,
    /// Stage 2: the certain k-center solve on the representatives.
    pub certain_solve: Duration,
    /// Stage 3: the assignment rule.
    pub assignment: Duration,
    /// Stage 4: the exact expected-cost sweep.
    pub cost: Duration,
    /// Optional stage 5: the certified lower bound.
    pub lower_bound: Duration,
    /// End-to-end wall clock of the solve call.
    pub total: Duration,
}

/// Distance evaluations through the problem's metric, per stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct DistanceEvals {
    /// During representative construction (0 for Euclidean `P̄`, which
    /// uses coordinate arithmetic, not the metric).
    pub representatives: u64,
    /// During the certain k-center solve.
    pub certain_solve: u64,
    /// During assignment.
    pub assignment: u64,
    /// During the exact cost sweep.
    pub cost: u64,
    /// During lower-bound certification.
    pub lower_bound: u64,
}

impl DistanceEvals {
    /// Total evaluations across all stages.
    pub fn total(&self) -> u64 {
        self.representatives + self.certain_solve + self.assignment + self.cost + self.lower_bound
    }
}

/// Instrumentation of a warm-started solve
/// ([`crate::Solution::warm_start`]): what was reused from the prior
/// solution, what that saved, and — when the warm fast path could not be
/// taken — why the solve fell back to the cold pipeline.
///
/// Present on a report (`Some`) exactly when the solve went through the
/// warm entry point; a plain cold [`crate::Problem::solve`] leaves
/// [`Report::warm`] as `None`, so serving layers can distinguish "cold
/// because asked" from "cold because the warm start fell back".
#[derive(Clone, Debug, Default)]
pub struct WarmStats {
    /// Centers carried over verbatim from the prior solution (`k` on the
    /// warm fast path, `0` on a cold fallback).
    pub reused_centers: usize,
    /// Estimated distance evaluations the warm path avoided versus a
    /// cold solve of the same problem (stage-count model of the cold
    /// pipeline minus the warm solve's actual spend; `0` on fallback).
    pub evals_saved: u64,
    /// Pipeline stages the warm path skipped or shrank (e.g.
    /// `"certain_solve"`, `"assignment_prefix"`).
    pub stages_skipped: Vec<&'static str>,
    /// `None` when the warm fast path ran; otherwise the typed reason the
    /// solve fell back to the cold pipeline (`"config_unsupported"`,
    /// `"space_unsupported"`, `"k_mismatch"`, `"prefix_mismatch"`,
    /// `"radius_bound_exceeded"`, ...). The result is still a valid
    /// solution either way — fallback is never an error.
    pub fallback: Option<&'static str>,
}

/// The instrumentation attached to every [`crate::Solution`].
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Wall-clock per stage.
    pub timings: StageTimings,
    /// Metric-distance evaluations per stage. Counts calls through the
    /// problem's metric object; solver-internal coordinate arithmetic
    /// (e.g. inside the Euclidean grid solver) is not included.
    pub distance_evals: DistanceEvals,
    /// The certified lower bound on the optimum expected cost, when the
    /// config asked for one ([`crate::SolverConfigBuilder::lower_bound`]).
    /// `alg / lower_bound` upper-bounds the true approximation ratio.
    pub lower_bound: Option<f64>,
    /// Human-readable `space/rule/strategy` descriptor of how the
    /// solution was produced.
    pub method: String,
    /// Warm-start instrumentation, present only on solves that went
    /// through [`crate::Solution::warm_start`] (including its cold
    /// fallbacks, which carry the typed [`WarmStats::fallback`] reason).
    pub warm: Option<WarmStats>,
}

/// A [`Metric`] decorator counting every distance evaluation.
///
/// The counter is atomic so the same wrapper works under
/// [`crate::solve_batch`]'s scoped threads; counting uses relaxed
/// ordering and costs one uncontended atomic add per call.
pub struct CountingMetric<'a, P: ?Sized> {
    inner: &'a (dyn Metric<P> + 'a),
    count: DistCounter,
}

impl<'a, P: ?Sized> CountingMetric<'a, P> {
    /// Wraps `inner`, starting the count at zero.
    pub fn new(inner: &'a (dyn Metric<P> + 'a)) -> Self {
        Self {
            inner,
            count: DistCounter::new(),
        }
    }

    /// The number of evaluations so far.
    pub fn count(&self) -> u64 {
        self.count.count()
    }

    /// Evaluations since `since` (a previous [`CountingMetric::count`]).
    pub fn since(&self, since: u64) -> u64 {
        self.count.since(since)
    }
}

impl<P: ?Sized> Metric<P> for CountingMetric<'_, P> {
    fn dist(&self, a: &P, b: &P) -> f64 {
        self.count.add(1);
        self.inner.dist(a, b)
    }
}

impl<P> DistanceOracle<P> for CountingMetric<'_, P> {}

#[cfg(test)]
mod tests {
    use super::*;
    use ukc_metric::{Euclidean, Point};

    #[test]
    fn counting_metric_counts_and_forwards() {
        let counting = CountingMetric::new(&Euclidean);
        let a = Point::new(vec![0.0, 0.0]);
        let b = Point::new(vec![3.0, 4.0]);
        assert_eq!(counting.count(), 0);
        assert_eq!(counting.dist(&a, &b), 5.0);
        assert_eq!(counting.count(), 1);
        // Provided methods route through dist and are counted too.
        let centers = vec![a.clone(), b.clone()];
        let (idx, d) = counting.nearest(&a, &centers).unwrap();
        assert_eq!((idx, d), (0, 0.0));
        assert_eq!(counting.count(), 3);
        assert_eq!(counting.since(1), 2);
    }

    #[test]
    fn distance_evals_total() {
        let evals = DistanceEvals {
            representatives: 1,
            certain_solve: 2,
            assignment: 3,
            cost: 4,
            lower_bound: 5,
        };
        assert_eq!(evals.total(), 15);
    }
}
