//! Stable, canonical instance digests.
//!
//! A serving layer deduplicates uploaded instances and caches solutions
//! by content, so it needs a digest that is (a) stable across processes
//! and platforms (no [`std::collections::hash_map::RandomState`]) and
//! (b) canonical: two uploads describing the *same* instance — the same
//! multiset of uncertain points, regardless of upload order or of the
//! order locations are listed within a point — digest identically, while
//! any actual difference (a coordinate, a probability, `k`, the space)
//! changes the digest.
//!
//! The hash is 64-bit FNV-1a over a canonical byte stream: every
//! `(location, probability)` pair is sorted within its point, per-point
//! digests are sorted across the instance, and floats are hashed by IEEE
//! bit pattern with `-0.0` normalized to `0.0` so numerically equal
//! coordinates cannot split the cache.

use ukc_metric::Point;
use ukc_uncertain::{UncertainPoint, UncertainSet};

/// 64-bit FNV-1a, the digest's underlying hash.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Fnv1a(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv1a {
    pub(crate) fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    pub(crate) fn write_f64(&mut self, v: f64) {
        self.write_u64(canonical_bits(v));
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

/// The IEEE bit pattern with `-0.0` normalized to `0.0`: numerically
/// equal values must digest identically.
fn canonical_bits(v: f64) -> u64 {
    let v = if v == 0.0 { 0.0 } else { v };
    v.to_bits()
}

/// Canonical digest of one location: dimension, then coordinates.
fn digest_location(p: &Point) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(p.dim() as u64);
    for &c in p.coords() {
        h.write_f64(c);
    }
    h.finish()
}

/// Canonical digest of one uncertain point: its `(location, prob)` pairs
/// sorted by (location digest, probability bits), so the order locations
/// were listed in cannot change the digest.
fn digest_uncertain_point(up: &UncertainPoint<Point>) -> u64 {
    let mut pairs: Vec<(u64, u64)> = up
        .locations()
        .iter()
        .zip(up.probs())
        .map(|(loc, &p)| (digest_location(loc), canonical_bits(p)))
        .collect();
    pairs.sort_unstable();
    let mut h = Fnv1a::new();
    h.write_u64(pairs.len() as u64);
    for (loc, prob) in pairs {
        h.write_u64(loc);
        h.write_u64(prob);
    }
    h.finish()
}

/// Canonical digest of an uncertain set: per-point digests sorted, so
/// upload order cannot change the digest, then folded with the count.
///
/// Two sets digest identically iff they contain the same multiset of
/// uncertain points (up to location-listing order within a point and the
/// sign of zero coordinates).
pub fn digest_set(set: &UncertainSet<Point>) -> u64 {
    let mut per_point: Vec<u64> = set.iter().map(digest_uncertain_point).collect();
    per_point.sort_unstable();
    let mut h = Fnv1a::new();
    h.write_u64(per_point.len() as u64);
    for d in per_point {
        h.write_u64(d);
    }
    h.finish()
}

/// Canonical digest of a discrete candidate pool (sorted, so pool order
/// cannot change the digest).
pub(crate) fn digest_pool(pool: &[Point]) -> u64 {
    let mut locs: Vec<u64> = pool.iter().map(digest_location).collect();
    locs.sort_unstable();
    let mut h = Fnv1a::new();
    h.write_u64(locs.len() as u64);
    for d in locs {
        h.write_u64(d);
    }
    h.finish()
}

/// Combines an already-computed set digest with the problem shape (`k`,
/// space name, optional pool digest) into the digest
/// [`crate::Problem::instance_digest`] returns. Lets a serving layer
/// that stored the set digest at upload time derive the cache key for
/// any `k` without re-hashing the points.
pub fn digest_problem(
    space_name: &str,
    k: usize,
    set_digest: u64,
    pool_digest: Option<u64>,
) -> u64 {
    let mut h = Fnv1a::new();
    h.write(space_name.as_bytes());
    h.write_u64(k as u64);
    h.write_u64(set_digest);
    if let Some(pool) = pool_digest {
        h.write_u64(pool);
    }
    h.finish()
}

/// Formats a digest the way instance IDs appear on the wire.
pub fn digest_hex(digest: u64) -> String {
    format!("{digest:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Problem;
    use ukc_uncertain::generators::{clustered, ProbModel};

    fn up(locs: &[&[f64]], probs: &[f64]) -> UncertainPoint<Point> {
        UncertainPoint::new(
            locs.iter().map(|c| Point::new(c.to_vec())).collect(),
            probs.to_vec(),
        )
        .unwrap()
    }

    #[test]
    fn permuting_upload_order_keeps_the_digest() {
        let a = up(&[&[0.0, 1.0], &[2.0, 3.0]], &[0.25, 0.75]);
        let b = up(&[&[5.0, 5.0]], &[1.0]);
        let c = up(&[&[-1.0, 4.0], &[0.5, 0.5]], &[0.5, 0.5]);
        let original = UncertainSet::new(vec![a.clone(), b.clone(), c.clone()]);
        let permuted = UncertainSet::new(vec![c, a, b]);
        assert_eq!(digest_set(&original), digest_set(&permuted));
    }

    #[test]
    fn permuting_locations_within_a_point_keeps_the_digest() {
        let forward = up(&[&[0.0, 1.0], &[2.0, 3.0]], &[0.25, 0.75]);
        let backward = up(&[&[2.0, 3.0], &[0.0, 1.0]], &[0.75, 0.25]);
        let s1 = UncertainSet::new(vec![forward]);
        let s2 = UncertainSet::new(vec![backward]);
        assert_eq!(digest_set(&s1), digest_set(&s2));
    }

    #[test]
    fn actual_differences_change_the_digest() {
        let base = UncertainSet::new(vec![
            up(&[&[0.0, 1.0], &[2.0, 3.0]], &[0.25, 0.75]),
            up(&[&[5.0, 5.0]], &[1.0]),
        ]);
        // A coordinate changes.
        let coord = UncertainSet::new(vec![
            up(&[&[0.0, 1.0], &[2.0, 3.5]], &[0.25, 0.75]),
            up(&[&[5.0, 5.0]], &[1.0]),
        ]);
        // A probability moves between the same locations.
        let prob = UncertainSet::new(vec![
            up(&[&[0.0, 1.0], &[2.0, 3.0]], &[0.5, 0.5]),
            up(&[&[5.0, 5.0]], &[1.0]),
        ]);
        // A point disappears.
        let fewer = UncertainSet::new(vec![up(&[&[0.0, 1.0], &[2.0, 3.0]], &[0.25, 0.75])]);
        assert_ne!(digest_set(&base), digest_set(&coord));
        assert_ne!(digest_set(&base), digest_set(&prob));
        assert_ne!(digest_set(&base), digest_set(&fewer));
    }

    #[test]
    fn swapping_probs_between_distinct_points_changes_the_digest() {
        // Same multiset of locations overall, but the pairing differs —
        // these are genuinely different instances.
        let s1 = UncertainSet::new(vec![up(&[&[0.0], &[1.0]], &[0.1, 0.9])]);
        let s2 = UncertainSet::new(vec![up(&[&[0.0], &[1.0]], &[0.9, 0.1])]);
        assert_ne!(digest_set(&s1), digest_set(&s2));
    }

    #[test]
    fn zero_sign_is_canonical() {
        let s1 = UncertainSet::new(vec![up(&[&[0.0, 2.0]], &[1.0])]);
        let s2 = UncertainSet::new(vec![up(&[&[-0.0, 2.0]], &[1.0])]);
        assert_eq!(digest_set(&s1), digest_set(&s2));
        // Probabilities get the same normalization as coordinates.
        let p1 = UncertainSet::new(vec![up(&[&[1.0], &[2.0]], &[1.0, 0.0])]);
        let p2 = UncertainSet::new(vec![up(&[&[1.0], &[2.0]], &[1.0, -0.0])]);
        assert_eq!(digest_set(&p1), digest_set(&p2));
    }

    #[test]
    fn digest_is_stable_across_runs() {
        // Pin one value so accidental canonicalization changes show up in
        // review: this constant may only change with a deliberate format
        // bump (which must also invalidate server caches).
        let set = UncertainSet::new(vec![up(&[&[1.0, 2.0], &[3.0, 4.0]], &[0.5, 0.5])]);
        assert_eq!(digest_hex(digest_set(&set)), "9a68fb0f20ddadb4");
    }

    #[test]
    fn problem_digest_separates_k_and_space() {
        let set = clustered(11, 12, 3, 2, 2, 4.0, 1.0, ProbModel::Random);
        let p2 = Problem::euclidean(set.clone(), 2).unwrap();
        let p3 = Problem::euclidean(set.clone(), 3).unwrap();
        assert_ne!(p2.instance_digest(), p3.instance_digest());
        assert_eq!(
            p2.instance_digest(),
            Problem::euclidean(set.clone(), 2)
                .unwrap()
                .instance_digest()
        );
        let pool = set.location_pool();
        let discrete = Problem::in_metric(set, 2, ukc_metric::Euclidean, pool).unwrap();
        assert_ne!(p2.instance_digest(), discrete.instance_digest());
    }
}
