//! Certified lower bounds on the optimal expected cost.
//!
//! Measuring an approximation ratio needs a denominator that never exceeds
//! the true optimum. Two families of bounds are combined (both proved by
//! the paper's own lemmas):
//!
//! 1. **Per-point 1-median bound** (Lemma 3.2): for any centers and any
//!    assignment, `EcostA ≥ Σⱼ pᵢⱼ·d(Pᵢⱼ, A(Pᵢ)) ≥ min_c E d(Pᵢ, c)`,
//!    so `opt ≥ max_i min_c E d(Pᵢ, c)`. The inner minimum is a
//!    Fermat–Weber value (Weiszfeld) in Euclidean space, or a discrete
//!    1-median over the candidate pool in a finite metric space.
//! 2. **Certain-projection bound** (Lemmas 3.4 / 3.6): for the optimal
//!    centers `c*` one has `cost_certain(c*) ≤ EcostA(c*) = opt` over the
//!    expected points (Euclidean), hence
//!    `opt ≥ opt_kcenter(P̄₁..P̄_n) ≥ gonzalez_radius(P̄)/2`. In a general
//!    metric space Lemma 3.6 gives the weaker
//!    `opt ≥ opt_kcenter(P̃)/2 ≥ gonzalez_radius(P̃)/4`.
//!
//! Both bounds hold for *every* assigned version (restricted under any
//! rule, and unrestricted), because they hold for arbitrary assignments.

use ukc_geometry::median::{geometric_median, WeiszfeldOptions};
use ukc_kcenter::gonzalez;
use ukc_metric::{DistanceOracle, Euclidean, Metric, Point};
use ukc_uncertain::{expected_distance, expected_point, one_center_discrete, UncertainSet};

/// Certified lower bound specific to the 1-center problem (`k = 1`, where
/// assigned and unassigned coincide): combines the per-point 1-median
/// bound with the *pairwise* bound
///
/// ```text
/// Ecost(c) = E[max_i d(P̂ᵢ, c)] ≥ E[ d(P̂ᵢ, P̂ⱼ) ] / 2   for every i ≠ j,
/// ```
///
/// which holds realization-wise by the triangle inequality
/// (`max(d(u,c), d(v,c)) ≥ d(u,v)/2`) and independence. O(n²z²).
pub fn lower_bound_one_center<P, M: Metric<P>>(set: &UncertainSet<P>, metric: &M) -> f64 {
    let mut best = 0.0f64;
    let n = set.n();
    for i in 0..n {
        for j in (i + 1)..n {
            let mut e = 0.0;
            for (u, pu) in set[i].support() {
                for (v, pv) in set[j].support() {
                    e += pu * pv * metric.dist(u, v);
                }
            }
            best = best.max(e / 2.0);
        }
    }
    best
}

/// Certified lower bound on the optimal expected cost of any assigned
/// k-center solution in Euclidean space.
pub fn lower_bound_euclidean(set: &UncertainSet<Point>, k: usize) -> f64 {
    // Per-point Fermat–Weber bound.
    let per_point = set
        .iter()
        .map(|up| {
            let med = geometric_median(up.locations(), up.probs(), WeiszfeldOptions::default())
                .expect("valid distribution");
            expected_distance(up, &med, &Euclidean)
        })
        .fold(0.0f64, f64::max);
    // Certain-projection bound via the expected points.
    let reps: Vec<Point> = set.iter().map(expected_point).collect();
    let certain = if k == 0 {
        0.0
    } else {
        gonzalez(&reps, k, &Euclidean, 0).radius / 2.0
    };
    per_point.max(certain)
}

/// Certified lower bound on the optimal expected cost of any assigned
/// k-center solution in a general metric space, with centers restricted to
/// `candidates`.
///
/// # Panics
/// Panics when `candidates` is empty.
pub fn lower_bound_metric<P: Clone, M: DistanceOracle<P>>(
    set: &UncertainSet<P>,
    k: usize,
    candidates: &[P],
    metric: &M,
) -> f64 {
    assert!(!candidates.is_empty(), "need a candidate pool");
    // Per-point discrete 1-median bound (valid because the optimal centers
    // are themselves drawn from the candidate pool in the discrete
    // problem).
    let per_point = set
        .iter()
        .map(|up| one_center_discrete(up, candidates, metric).1)
        .fold(0.0f64, f64::max);
    // Certain-projection bound via the 1-center representatives
    // (Lemma 3.6 costs a factor 2, Gonzalez another factor 2).
    let reps: Vec<P> = set
        .iter()
        .map(|up| {
            let (idx, _) = one_center_discrete(up, candidates, metric);
            candidates[idx].clone()
        })
        .collect();
    let certain = if k == 0 {
        0.0
    } else {
        gonzalez(&reps, k, metric, 0).radius / 4.0
    };
    per_point.max(certain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AssignmentRule, Problem, Solution, SolverConfig};
    use ukc_metric::FiniteMetric;
    use ukc_uncertain::generators::{clustered, on_finite_metric, uniform_box, ProbModel};
    use ukc_uncertain::UncertainSet;

    fn config(rule: AssignmentRule) -> SolverConfig {
        SolverConfig::builder()
            .rule(rule)
            .lower_bound(false)
            .build()
            .unwrap()
    }

    fn solve_eu(set: &UncertainSet<Point>, k: usize, rule: AssignmentRule) -> Solution<Point> {
        Problem::euclidean(set.clone(), k)
            .unwrap()
            .solve(&config(rule))
            .unwrap()
    }

    #[test]
    fn euclidean_bound_below_every_algorithm_output() {
        for seed in 0..6u64 {
            let set = clustered(seed, 12, 3, 2, 3, 4.0, 1.0, ProbModel::Random);
            let lb = lower_bound_euclidean(&set, 3);
            for rule in [
                AssignmentRule::ExpectedDistance,
                AssignmentRule::ExpectedPoint,
                AssignmentRule::OneCenter,
            ] {
                let sol = solve_eu(&set, 3, rule);
                assert!(
                    lb <= sol.ecost + 1e-9,
                    "seed {seed} rule {rule:?}: lb {lb} > ecost {}",
                    sol.ecost
                );
            }
        }
    }

    #[test]
    fn euclidean_bound_is_positive_for_uncertain_inputs() {
        let set = uniform_box(1, 10, 3, 2, 20.0, 2.0, ProbModel::Random);
        let lb = lower_bound_euclidean(&set, 2);
        assert!(lb > 0.0);
    }

    #[test]
    fn metric_bound_below_every_algorithm_output() {
        let g = ukc_metric::WeightedGraph::grid(3, 4, 1.5);
        let fm: FiniteMetric = g.shortest_path_metric().unwrap();
        for seed in 0..4u64 {
            let set = on_finite_metric(seed, fm.len(), 8, 3, ProbModel::Random);
            let pool = set.location_pool();
            let lb = lower_bound_metric(&set, 2, &pool, &fm);
            for rule in [AssignmentRule::ExpectedDistance, AssignmentRule::OneCenter] {
                let sol = Problem::in_metric(set.clone(), 2, fm.clone(), pool.clone())
                    .unwrap()
                    .solve(&config(rule))
                    .unwrap();
                assert!(
                    lb <= sol.ecost + 1e-9,
                    "seed {seed} rule {rule:?}: lb {lb} > ecost {}",
                    sol.ecost
                );
            }
        }
    }

    #[test]
    fn k_greater_equal_n_keeps_per_point_bound() {
        // With k >= n the certain radius collapses to 0 but the per-point
        // uncertainty floor remains: even a dedicated center per point pays
        // the point's own spread.
        let set = uniform_box(5, 4, 3, 2, 10.0, 2.0, ProbModel::Uniform);
        let lb = lower_bound_euclidean(&set, 10);
        assert!(lb > 0.0);
        let sol = solve_eu(&set, 4, AssignmentRule::ExpectedDistance);
        assert!(lb <= sol.ecost + 1e-9);
    }

    #[test]
    fn one_center_bound_below_reference_optimum() {
        use crate::one_center::reference_one_center;
        for seed in 0..4u64 {
            let set = uniform_box(seed, 5, 3, 2, 10.0, 2.0, ProbModel::Random);
            let lb = lower_bound_one_center(&set, &Euclidean);
            let (_, opt) = reference_one_center(&set);
            assert!(lb <= opt + 1e-9, "seed {seed}: lb {lb} > opt {opt}");
            assert!(lb > 0.0);
        }
    }

    #[test]
    fn one_center_bound_tight_on_two_certain_points() {
        use ukc_uncertain::UncertainPoint;
        let set = UncertainSet::new(vec![
            UncertainPoint::certain(Point::scalar(0.0)),
            UncertainPoint::certain(Point::scalar(10.0)),
        ]);
        // Opt 1-center cost is 5; the pairwise bound gives exactly 5.
        let lb = lower_bound_one_center(&set, &Euclidean);
        assert!((lb - 5.0).abs() < 1e-12);
    }

    #[test]
    fn certain_points_give_zero_per_point_but_positive_certain_bound() {
        use ukc_uncertain::UncertainPoint;
        let set = UncertainSet::new(vec![
            UncertainPoint::certain(Point::scalar(0.0)),
            UncertainPoint::certain(Point::scalar(10.0)),
            UncertainPoint::certain(Point::scalar(20.0)),
        ]);
        // k=1: optimal cost is 10 (center at 10). The bound must be > 0 and
        // <= 10.
        let lb = lower_bound_euclidean(&set, 1);
        assert!(lb > 0.0 && lb <= 10.0 + 1e-9, "lb {lb}");
    }
}
