//! # ukc-core — the paper's uncertain k-center algorithms
//!
//! Implements every algorithm of *Improvements on the k-center problem for
//! uncertain data* (Alipour & Jafari, PODS 2018), mapped to theorems:
//!
//! | Paper artifact | API |
//! |---|---|
//! | Theorem 2.1 (1-center, factor 2, O(z)) | [`one_center::expected_point_one_center`] |
//! | Theorem 2.2 + Remark 3.1 (restricted assigned, Euclidean; ED: 6 / 5+ε, EP: 4 / 3+ε) | [`solver::solve_euclidean`] with [`AssignmentRule::ExpectedDistance`] / [`AssignmentRule::ExpectedPoint`] |
//! | Theorems 2.4 / 2.5 (unrestricted assigned, Euclidean; 4 / 3+ε) | same solver — the paper's point is that the *restricted* pipeline already approximates the unrestricted optimum |
//! | Theorems 2.6 / 2.7 (any metric; ED: 7+2ε, OC: 5+2ε) | [`solver::solve_metric`] with [`MetricAssignmentRule`] |
//! | Lemma 3.2-style certified lower bounds | [`bounds`] |
//!
//! The pipeline shared by every theorem:
//!
//! 1. replace each uncertain point by a certain representative (`P̄` in
//!    Euclidean space, `P̃` in a general metric space);
//! 2. solve deterministic k-center on the representatives with any
//!    (1+ε)-approximate solver ([`CertainSolver`]);
//! 3. assign each uncertain point to a center by the chosen rule
//!    ([`assignments`]);
//! 4. report the *exact* expected cost of the result (via
//!    `ukc_uncertain::ecost_assigned`).
//!
//! ```
//! use ukc_core::{solve_euclidean, AssignmentRule, CertainSolver};
//! use ukc_uncertain::generators::{clustered, ProbModel};
//!
//! let set = clustered(42, 30, 4, 2, 3, 5.0, 1.0, ProbModel::Random);
//! let sol = solve_euclidean(&set, 3, AssignmentRule::ExpectedPoint, CertainSolver::Gonzalez);
//! assert_eq!(sol.centers.len(), 3);
//! assert!(sol.ecost.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignments;
pub mod bounds;
pub mod one_center;
pub mod solver;

pub use assignments::{assign_ed, assign_ep, assign_oc, AssignmentRule, MetricAssignmentRule};
pub use bounds::{lower_bound_euclidean, lower_bound_metric, lower_bound_one_center};
pub use one_center::{expected_point_one_center, reference_one_center};
pub use solver::{
    solve_euclidean, solve_metric, CertainSolver, EuclideanSolution, MetricCertainSolver,
    MetricSolution,
};
