//! # ukc-core — the paper's uncertain k-center algorithms
//!
//! Implements every algorithm of *Improvements on the k-center problem for
//! uncertain data* (Alipour & Jafari, PODS 2018) behind a unified,
//! request-shaped API: a validated [`Problem`], a fluent [`SolverConfig`],
//! and a [`Solution`] carrying per-stage instrumentation ([`Report`]).
//! Nothing in the solve path panics on user input — rejections are typed
//! [`SolveError`]s — and [`solve_batch`] fans independent problems across
//! threads with bit-identical results to the sequential loop.
//!
//! | Paper artifact | API |
//! |---|---|
//! | Theorem 2.1 (1-center, factor 2, O(z)) | [`one_center::expected_point_one_center`] |
//! | Theorem 2.2 + Remark 3.1 (restricted assigned, Euclidean; ED: 6 / 5+ε, EP: 4 / 3+ε) | [`Problem::euclidean`] with [`AssignmentRule::ExpectedDistance`] / [`AssignmentRule::ExpectedPoint`] |
//! | Theorems 2.4 / 2.5 (unrestricted assigned, Euclidean; 4 / 3+ε) | same pipeline — the paper's point is that the *restricted* pipeline already approximates the unrestricted optimum |
//! | Theorems 2.6 / 2.7 (any metric; ED: 7+2ε, OC: 5+2ε) | [`Problem::in_metric`] with the ED / OC rules |
//! | Lemma 3.2-style certified lower bounds | [`bounds`], surfaced per solve in [`Report::lower_bound`] |
//!
//! The pipeline shared by every theorem:
//!
//! 1. replace each uncertain point by a certain representative (`P̄` in
//!    Euclidean space, `P̃` in a general metric space);
//! 2. solve deterministic k-center on the representatives with any
//!    (1+ε)-approximate solver ([`CertainStrategy`]);
//! 3. assign each uncertain point to a center by the chosen rule
//!    ([`assignments`]);
//! 4. report the *exact* expected cost of the result (via
//!    `ukc_uncertain::ecost_assigned`).
//!
//! ```
//! use ukc_core::{AssignmentRule, Problem, SolverConfig};
//! use ukc_uncertain::generators::{clustered, ProbModel};
//!
//! let set = clustered(42, 30, 4, 2, 3, 5.0, 1.0, ProbModel::Random);
//! let problem = Problem::euclidean(set, 3).unwrap();
//! let config = SolverConfig::builder()
//!     .rule(AssignmentRule::ExpectedPoint)
//!     .build()
//!     .unwrap();
//! let solution = problem.solve(&config).unwrap();
//! assert_eq!(solution.centers.len(), 3);
//! assert!(solution.ecost.is_finite());
//! // Every solve certifies itself: exact cost vs. lower bound, stage
//! // timings, and distance-evaluation counts.
//! assert!(solution.report.lower_bound.unwrap() <= solution.ecost + 1e-9);
//! assert!(solution.report.distance_evals.total() > 0);
//! ```
//!
//! Batch workloads go through [`solve_batch`]:
//!
//! ```
//! use ukc_core::{solve_batch, Problem, SolverConfig};
//! use ukc_uncertain::generators::{clustered, ProbModel};
//!
//! let problems: Vec<_> = (0..8)
//!     .map(|seed| {
//!         let set = clustered(seed, 12, 3, 2, 2, 4.0, 1.0, ProbModel::Random);
//!         Problem::euclidean(set, 2).unwrap()
//!     })
//!     .collect();
//! let results = solve_batch(&problems, &SolverConfig::default());
//! assert!(results.iter().all(|r| r.is_ok()));
//! ```
//!
//! The pre-0.2 free functions `solve_euclidean` / `solve_metric` remain
//! as `#[deprecated]` wrappers over the same internals (see [`solver`]
//! for the migration table).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignments;
pub mod bounds;
pub mod config;
pub mod digest;
pub mod error;
pub mod incremental;
pub mod one_center;
pub mod problem;
pub mod report;
pub mod solver;

pub use assignments::{
    assign_ed, assign_ed_weighted, assign_ed_weighted_exec, assign_ep, assign_oc, AssignmentRule,
    MetricAssignmentRule,
};
pub use bounds::{lower_bound_euclidean, lower_bound_metric, lower_bound_one_center};
pub use config::{
    AssignmentMode, CandidatePolicy, CertainStrategy, SolverConfig, SolverConfigBuilder,
};
pub use digest::{digest_hex, digest_problem, digest_set};
pub use error::SolveError;
pub use incremental::{solve_loo, LooReport, LooVariant};
pub use one_center::{expected_point_one_center, reference_one_center};
pub use problem::{
    solve_batch, solve_batch_threads, validate_k, ContinuousSpace, EuclideanSpace, Problem,
    Solution,
};
pub use report::{CountingMetric, DistanceEvals, Report, StageTimings, WarmStats};
#[allow(deprecated)]
pub use solver::{
    solve_euclidean, solve_metric, CertainSolver, EuclideanSolution, MetricCertainSolver,
    MetricSolution,
};
