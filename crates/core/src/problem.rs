//! The unified `Problem` / `Solution` solve path.
//!
//! A [`Problem`] is a validated request: an uncertain set, `k`, and the
//! space solved in — either a continuous space with representative
//! constructions ([`ContinuousSpace`], with [`EuclideanSpace`] as the
//! paper's instance) or a general metric space with a discrete candidate
//! pool. A [`crate::SolverConfig`] picks the pipeline variant. Solving
//! never panics on user input: every rejection is a typed
//! [`SolveError`], and every success is a [`Solution`] carrying its own
//! instrumentation [`Report`].
//!
//! The pipeline is the paper's in all cases (Theorems 2.2–2.7):
//! representatives → certain k-center → assignment rule → exact expected
//! cost. [`solve_batch`] fans independent problems out across scoped
//! threads with bit-identical results to the sequential loop.
//!
//! ```
//! use ukc_core::{Problem, SolverConfig};
//! use ukc_uncertain::generators::{clustered, ProbModel};
//!
//! let set = clustered(42, 30, 4, 2, 3, 5.0, 1.0, ProbModel::Random);
//! let problem = Problem::euclidean(set, 3).unwrap();
//! let solution = problem.solve(&SolverConfig::default()).unwrap();
//! assert_eq!(solution.centers.len(), 3);
//! assert!(solution.ecost >= solution.report.lower_bound.unwrap() - 1e-9);
//! ```

use std::sync::Arc;
use std::time::Instant;

use crate::assignments::{
    assign_ed, assign_ed_exec, assign_ed_weighted_exec, assign_oc, AssignmentRule,
};
use crate::config::{AssignmentMode, CandidatePolicy, CertainStrategy, SolverConfig};
use crate::error::SolveError;
use crate::report::{CountingMetric, Report};
use ukc_kcenter::{
    exact_discrete_kcenter, gonzalez, gonzalez_indices_weighted, grid_kcenter_exec,
    kcenter_cost_weighted, local_search_kcenter, KCenterSolution,
};
use ukc_metric::{
    DistCounter, DistanceOracle, Euclidean, Metric, Point, PointId, PointStore, StoreOracle,
};
use ukc_pool::Exec;
use ukc_uncertain::{
    ecost_assigned, ecost_assigned_exec, expected_spreads_exec, one_center_discrete,
    UncertainPoint, UncertainSet,
};

/// A continuous space a [`Problem`] can live in: representative
/// constructions plus the space-specific machinery the pipeline needs.
///
/// [`EuclideanSpace`] is the paper's instance; implementing this trait for
/// another normed space (e.g. `L¹`) plugs it into the same `Problem` /
/// [`crate::SolverConfig`] machinery unchanged.
pub trait ContinuousSpace<P>: Send + Sync {
    /// Short name for reports and error messages (e.g. `"euclidean"`).
    fn name(&self) -> &'static str;

    /// The ambient metric.
    fn metric(&self) -> &(dyn Metric<P> + Send + Sync);

    /// The linearity representative `P̄` (Lemma 3.1's expected point).
    fn expected_point(&self, up: &UncertainPoint<P>) -> P;

    /// The 1-center representative `P̃`.
    fn one_center(&self, up: &UncertainPoint<P>) -> P;

    /// Whether the space defines an expected-point assignment; return
    /// `false` to make [`AssignmentRule::ExpectedPoint`] a
    /// [`SolveError::RuleUnsupported`] *before* any pipeline work runs.
    fn supports_expected_point(&self) -> bool {
        true
    }

    /// The expected-point assignment, or `None` when the space has no
    /// expected point (must agree with
    /// [`ContinuousSpace::supports_expected_point`]).
    fn assign_expected_point(
        &self,
        set: &UncertainSet<P>,
        centers: &[P],
        metric: &dyn Metric<P>,
    ) -> Option<Vec<usize>>;

    /// The space's certified `(1+ε)` solver, or `None` to fall back to
    /// Gonzalez (also returned past the solver's resource caps). `exec`
    /// is the solve's execution context: implementations may run their
    /// internal sweeps on it, provided the result stays bit-identical
    /// for every lane count (the execution-layer determinism contract).
    fn certified_solve(
        &self,
        reps: &[P],
        k: usize,
        opts: ukc_kcenter::GridOptions,
        exec: Exec<'_>,
    ) -> Option<KCenterSolution<P>>;

    /// A certified lower bound on the optimum expected cost with `k`
    /// centers.
    fn lower_bound(&self, set: &UncertainSet<P>, k: usize) -> f64;

    /// The raw coordinates of a point, when the space is backed by
    /// finite-dimensional real coordinates under the Euclidean metric.
    ///
    /// Returning `Some` for every point of an instance opts the space into
    /// the structure-of-arrays kernel fast path: the solve copies all
    /// coordinates into one [`PointStore`] and evaluates every distance
    /// through the batched [`ukc_metric::batch`] kernels (selected by
    /// [`crate::SolverConfig::kernel`]) instead of per-pair
    /// [`Metric::dist`] calls. Only override this when
    /// [`ContinuousSpace::metric`] is the Euclidean metric on those
    /// coordinates and the expected-point assignment is
    /// nearest-center-to-`P̄` — the fast path assumes both. The default
    /// (`None`) keeps the space on the pointwise path.
    fn coords_of<'a>(&self, p: &'a P) -> Option<&'a [f64]> {
        let _ = p;
        None
    }
}

/// The paper's continuous space: `ℝ^d` under the Euclidean metric.
#[derive(Clone, Copy, Debug, Default)]
pub struct EuclideanSpace;

impl ContinuousSpace<Point> for EuclideanSpace {
    fn name(&self) -> &'static str {
        "euclidean"
    }

    fn metric(&self) -> &(dyn Metric<Point> + Send + Sync) {
        &Euclidean
    }

    fn expected_point(&self, up: &UncertainPoint<Point>) -> Point {
        ukc_uncertain::expected_point(up)
    }

    fn one_center(&self, up: &UncertainPoint<Point>) -> Point {
        ukc_uncertain::one_center_euclidean(up)
    }

    fn assign_expected_point(
        &self,
        set: &UncertainSet<Point>,
        centers: &[Point],
        metric: &dyn Metric<Point>,
    ) -> Option<Vec<usize>> {
        Some(crate::assignments::assign_ep(set, centers, &metric))
    }

    fn certified_solve(
        &self,
        reps: &[Point],
        k: usize,
        opts: ukc_kcenter::GridOptions,
        exec: Exec<'_>,
    ) -> Option<KCenterSolution<Point>> {
        grid_kcenter_exec(reps, k, opts, exec)
    }

    fn lower_bound(&self, set: &UncertainSet<Point>, k: usize) -> f64 {
        crate::bounds::lower_bound_euclidean(set, k)
    }

    fn coords_of<'a>(&self, p: &'a Point) -> Option<&'a [f64]> {
        Some(p.coords())
    }
}

enum Space<P> {
    Continuous(Arc<dyn ContinuousSpace<P>>),
    Discrete {
        metric: Arc<dyn Metric<P> + Send + Sync>,
        pool: Arc<[P]>,
    },
}

impl<P> Clone for Space<P> {
    fn clone(&self) -> Self {
        match self {
            Space::Continuous(s) => Space::Continuous(Arc::clone(s)),
            Space::Discrete { metric, pool } => Space::Discrete {
                metric: Arc::clone(metric),
                pool: Arc::clone(pool),
            },
        }
    }
}

/// A validated uncertain k-center instance: set + `k` + space.
///
/// Construct with [`Problem::euclidean`] (continuous `ℝ^d`),
/// [`Problem::in_metric`] (any metric space with a discrete candidate
/// pool), or their non-panicking `*_points` variants taking raw point
/// vectors. Validation happens here, once — [`Problem::solve`] can then
/// only fail on problem × config incompatibilities.
///
/// ```
/// use ukc_core::{Problem, SolveError};
/// use ukc_uncertain::generators::{clustered, ProbModel};
///
/// let set = clustered(1, 12, 3, 2, 2, 4.0, 1.0, ProbModel::Random);
/// let problem = Problem::euclidean(set.clone(), 3).unwrap();
/// assert_eq!((problem.k(), problem.set().n()), (3, 12));
/// // Identical content digests identically, whatever the upload order —
/// // what serving layers key stores and caches on.
/// assert_eq!(
///     problem.instance_digest(),
///     Problem::euclidean(set.clone(), 3).unwrap().instance_digest(),
/// );
/// // Validation happens at construction: k > n is typed, not a panic.
/// assert!(matches!(
///     Problem::euclidean(set, 13),
///     Err(SolveError::KExceedsN { k: 13, n: 12 })
/// ));
/// ```
#[derive(Clone)]
pub struct Problem<P> {
    set: UncertainSet<P>,
    k: usize,
    space: Space<P>,
}

impl std::fmt::Debug for Problem<Point> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Problem")
            .field("n", &self.set.n())
            .field("k", &self.k)
            .field("space", &self.space_name())
            .finish()
    }
}

/// Validates a `(n, k)` request shape: `k == 0` is
/// [`SolveError::ZeroK`], `k > n` is [`SolveError::KExceedsN`]. Shared by
/// every problem constructor and the configured extension entry points so
/// identical bad input always yields the identical error.
pub fn validate_k(n: usize, k: usize) -> Result<(), SolveError> {
    if k == 0 {
        return Err(SolveError::ZeroK);
    }
    if k > n {
        return Err(SolveError::KExceedsN { k, n });
    }
    Ok(())
}

impl Problem<Point> {
    /// A stable, canonical content digest of this problem: the
    /// uncertain set (order-invariant, see [`crate::digest::digest_set`]),
    /// `k`, the space name, and — for discrete problems — the candidate
    /// pool. Identical instances digest identically regardless of upload
    /// order, so a serving layer can deduplicate uploads and key solution
    /// caches by `(digest, config)`.
    ///
    /// The digest does not cover the *behavior* of a custom
    /// [`ContinuousSpace`] or metric beyond its name; spaces with equal
    /// names are assumed to compute equal distances.
    pub fn instance_digest(&self) -> u64 {
        let pool_digest = match &self.space {
            Space::Discrete { pool, .. } => Some(crate::digest::digest_pool(pool)),
            Space::Continuous(_) => None,
        };
        crate::digest::digest_problem(
            self.space_name(),
            self.k,
            crate::digest::digest_set(&self.set),
            pool_digest,
        )
    }

    /// A Euclidean problem (the paper's Theorems 2.2 / 2.4 / 2.5
    /// setting).
    ///
    /// Validates that every location lives in one shared `ℝ^d`
    /// ([`SolveError::DimensionMismatch`] otherwise), so malformed input
    /// surfaces here as a typed error instead of a panic deep inside a
    /// solve.
    pub fn euclidean(set: UncertainSet<Point>, k: usize) -> Result<Self, SolveError> {
        let expected = set.point(0).locations()[0].dim();
        for (i, up) in set.iter().enumerate() {
            for loc in up.locations() {
                if loc.dim() != expected {
                    return Err(SolveError::DimensionMismatch {
                        point: i,
                        got: loc.dim(),
                        expected,
                    });
                }
            }
        }
        Self::continuous(set, k, EuclideanSpace)
    }

    /// Like [`Problem::euclidean`] from a raw point vector; an empty
    /// vector yields [`SolveError::EmptySet`] instead of panicking.
    pub fn euclidean_points(
        points: Vec<UncertainPoint<Point>>,
        k: usize,
    ) -> Result<Self, SolveError> {
        let set = UncertainSet::try_new(points).ok_or(SolveError::EmptySet)?;
        Self::euclidean(set, k)
    }
}

impl<P: Clone> Problem<P> {
    /// A problem in a custom [`ContinuousSpace`].
    pub fn continuous(
        set: UncertainSet<P>,
        k: usize,
        space: impl ContinuousSpace<P> + 'static,
    ) -> Result<Self, SolveError> {
        validate_k(set.n(), k)?;
        Ok(Self {
            set,
            k,
            space: Space::Continuous(Arc::new(space)),
        })
    }

    /// A general-metric problem: centers and representatives are drawn
    /// from `pool` (the paper's Theorems 2.6 / 2.7 setting).
    pub fn in_metric(
        set: UncertainSet<P>,
        k: usize,
        metric: impl Metric<P> + Send + Sync + 'static,
        pool: Vec<P>,
    ) -> Result<Self, SolveError> {
        Self::in_metric_shared(set, k, Arc::new(metric), Arc::from(pool))
    }

    /// Like [`Problem::in_metric`] from a raw point vector; an empty
    /// vector yields [`SolveError::EmptySet`] instead of panicking.
    pub fn in_metric_points(
        points: Vec<UncertainPoint<P>>,
        k: usize,
        metric: impl Metric<P> + Send + Sync + 'static,
        pool: Vec<P>,
    ) -> Result<Self, SolveError> {
        let set = UncertainSet::try_new(points).ok_or(SolveError::EmptySet)?;
        Self::in_metric(set, k, metric, pool)
    }

    /// A general-metric problem sharing an already-`Arc`ed metric and
    /// pool — the zero-copy constructor for batches of problems over one
    /// substrate (one road network, many queries).
    pub fn in_metric_shared(
        set: UncertainSet<P>,
        k: usize,
        metric: Arc<dyn Metric<P> + Send + Sync>,
        pool: Arc<[P]>,
    ) -> Result<Self, SolveError> {
        validate_k(set.n(), k)?;
        if pool.is_empty() {
            return Err(SolveError::EmptyCandidates);
        }
        Ok(Self {
            set,
            k,
            space: Space::Discrete { metric, pool },
        })
    }

    /// Rebuilds this problem around a different uncertain set, keeping
    /// `k` and the space (metric + candidate pool are shared, not
    /// cloned). The incremental layer uses this to derive leave-one-out
    /// variants without re-validating the space.
    pub(crate) fn with_set(&self, set: UncertainSet<P>) -> Result<Self, SolveError> {
        validate_k(set.n(), self.k)?;
        Ok(Self {
            set,
            k: self.k,
            space: self.space.clone(),
        })
    }

    /// The uncertain set.
    pub fn set(&self) -> &UncertainSet<P> {
        &self.set
    }

    /// The number of centers requested.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Short name of the problem's space (`"euclidean"`, `"discrete"`,
    /// or a custom [`ContinuousSpace::name`]).
    pub fn space_name(&self) -> &'static str {
        match &self.space {
            Space::Continuous(s) => s.name(),
            Space::Discrete { .. } => "discrete",
        }
    }

    /// Runs the paper's pipeline for this problem under `config`.
    ///
    /// Deterministic: identical `(problem, config)` pairs produce
    /// bit-identical solutions, on any thread.
    pub fn solve(&self, config: &SolverConfig) -> Result<Solution<P>, SolveError> {
        match &self.space {
            Space::Continuous(space) => solve_continuous(&self.set, self.k, space.as_ref(), config),
            Space::Discrete { metric, pool } => {
                solve_discrete(&self.set, self.k, metric.as_ref(), pool, config)
            }
        }
    }
}

/// The unified output of [`Problem::solve`]: the solution proper plus a
/// self-describing [`Report`].
///
/// ```
/// use ukc_core::{Problem, SolverConfig};
/// use ukc_uncertain::generators::{clustered, ProbModel};
///
/// let set = clustered(5, 20, 3, 2, 3, 5.0, 1.0, ProbModel::Random);
/// let solution = Problem::euclidean(set, 2)
///     .unwrap()
///     .solve(&SolverConfig::default())
///     .unwrap();
/// assert_eq!(solution.centers.len(), 2);
/// assert_eq!(solution.assignment.len(), 20);
/// // The exact expected cost is bracketed by the certified lower bound,
/// // and every stage is instrumented in the report.
/// assert!(solution.report.lower_bound.unwrap() <= solution.ecost + 1e-9);
/// assert!(solution.report.distance_evals.total() > 0);
/// ```
#[derive(Clone, Debug)]
pub struct Solution<P> {
    /// The k chosen centers (pool members for discrete problems).
    pub centers: Vec<P>,
    /// `assignment[i]` = index into `centers` serving point `i`.
    pub assignment: Vec<usize>,
    /// Exact expected cost `EcostA` of (centers, assignment).
    pub ecost: f64,
    /// The certain representatives the k-center step ran on (`P̄` for
    /// ED/EP rules, `P̃` for the OC rule).
    pub representatives: Vec<P>,
    /// The certain k-center radius achieved on the representatives.
    pub certain_radius: f64,
    /// Per-stage timings, distance-evaluation counts, and the certified
    /// lower bound.
    pub report: Report,
}

pub(crate) fn method_string(
    space: &str,
    rule: AssignmentRule,
    strategy: CertainStrategy,
) -> String {
    let rule = match rule {
        AssignmentRule::ExpectedDistance => "ed",
        AssignmentRule::ExpectedPoint => "ep",
        AssignmentRule::OneCenter => "oc",
    };
    format!("{space}/{rule}/{}", strategy.name())
}

/// The shared tail of both pipelines: assignment, exact cost, lower
/// bound, report assembly.
#[allow(clippy::too_many_arguments)]
fn finish_pipeline<P: Clone>(
    set: &UncertainSet<P>,
    config: &SolverConfig,
    counting: &CountingMetric<'_, P>,
    reps: Vec<P>,
    certain: KCenterSolution<P>,
    assignment: Vec<usize>,
    lower_bound: impl FnOnce() -> f64,
    mut report: Report,
    t_assigned: Instant,
) -> Solution<P> {
    let evals_before_cost = counting.count();
    report.timings.assignment = t_assigned.elapsed();

    let t_cost = Instant::now();
    let ecost = ecost_assigned(set, &certain.centers, &assignment, &counting);
    report.timings.cost = t_cost.elapsed();
    report.distance_evals.cost = counting.since(evals_before_cost);

    if config.computes_lower_bound() {
        let evals_before = counting.count();
        let t_bound = Instant::now();
        report.lower_bound = Some(lower_bound());
        report.timings.lower_bound = t_bound.elapsed();
        report.distance_evals.lower_bound = counting.since(evals_before);
    }

    Solution {
        centers: certain.centers,
        assignment,
        ecost,
        representatives: reps,
        certain_radius: certain.radius,
        report,
    }
}

/// The continuous pipeline (paper Theorems 2.2 / 2.4 / 2.5 for
/// [`EuclideanSpace`]). Shared by [`Problem::solve`] and the deprecated
/// `solve_euclidean` wrapper — the latter calls it directly, so the two
/// paths are the same code and bit-identical by construction.
pub(crate) fn solve_continuous<P: Clone>(
    set: &UncertainSet<P>,
    k: usize,
    space: &dyn ContinuousSpace<P>,
    config: &SolverConfig,
) -> Result<Solution<P>, SolveError> {
    let rule = config.rule();
    if rule == AssignmentRule::ExpectedPoint && !space.supports_expected_point() {
        return Err(SolveError::RuleUnsupported {
            rule,
            space: space.name(),
        });
    }
    if config.assignment() == AssignmentMode::AdditivelyWeighted {
        // The weighted pipeline is defined for the Gonzalez strategy only:
        // the other backends optimize the *unweighted* certain radius, so
        // pairing them with weighted assignment would silently solve a
        // different problem than they certify.
        match config.strategy() {
            CertainStrategy::Gonzalez => {}
            CertainStrategy::GonzalezLocalSearch { .. } => {
                return Err(SolveError::WeightedUnsupported {
                    feature: "the gonzalez+local-search strategy",
                })
            }
            CertainStrategy::Grid => {
                return Err(SolveError::WeightedUnsupported {
                    feature: "the grid strategy",
                })
            }
            CertainStrategy::ExactDiscrete => {
                return Err(SolveError::WeightedUnsupported {
                    feature: "the exact-discrete strategy",
                })
            }
        }
    }
    // Coordinate-backed spaces take the structure-of-arrays kernel path;
    // everything else falls through to the pointwise metric pipeline.
    if let Some(solution) = solve_continuous_store(set, k, space, config)? {
        return Ok(solution);
    }
    if config.assignment() == AssignmentMode::AdditivelyWeighted {
        // The weighted sweeps live in the batched kernel layer, so the
        // pointwise fallback cannot serve this mode.
        return Err(SolveError::WeightedUnsupported {
            feature: "spaces without shared-dimension coordinates",
        });
    }
    let counting = CountingMetric::new(space.metric());
    let t_total = Instant::now();
    let mut report = Report {
        method: method_string(space.name(), rule, config.strategy()),
        ..Report::default()
    };

    // Step 1: representatives, O(nz) (ED/EP) or O(nz·iters) (OC).
    let t = Instant::now();
    let reps: Vec<P> = match rule {
        AssignmentRule::ExpectedDistance | AssignmentRule::ExpectedPoint => {
            set.iter().map(|up| space.expected_point(up)).collect()
        }
        AssignmentRule::OneCenter => set.iter().map(|up| space.one_center(up)).collect(),
    };
    report.timings.representatives = t.elapsed();
    report.distance_evals.representatives = counting.count();

    // Step 2: certain k-center on the representatives.
    let evals_before = counting.count();
    let t = Instant::now();
    let certain = match config.strategy() {
        CertainStrategy::Gonzalez => gonzalez(&reps, k, &counting, 0),
        CertainStrategy::GonzalezLocalSearch { rounds } => {
            let gz = gonzalez(&reps, k, &counting, 0);
            local_search_kcenter(&reps, &reps, &gz.center_indices, &counting, rounds)
        }
        CertainStrategy::Grid => space
            .certified_solve(
                &reps,
                k,
                config.grid_options(),
                Exec::auto(config.resolved_threads()),
            )
            .unwrap_or_else(|| gonzalez(&reps, k, &counting, 0)),
        CertainStrategy::ExactDiscrete => {
            let pool_storage;
            let pool: &[P] = match config.candidate_policy() {
                CandidatePolicy::ProblemPool => &reps,
                CandidatePolicy::LocationPool => {
                    pool_storage = set.location_pool();
                    &pool_storage
                }
            };
            exact_discrete_kcenter(&reps, pool, k, &counting, config.exact_options())
                .unwrap_or_else(|| gonzalez(&reps, k, &counting, 0))
        }
    };
    report.timings.certain_solve = t.elapsed();
    report.distance_evals.certain_solve = counting.since(evals_before);

    // Step 3: assignment by the configured rule.
    let evals_before = counting.count();
    let t = Instant::now();
    let assignment = match rule {
        AssignmentRule::ExpectedDistance => assign_ed(set, &certain.centers, &counting),
        AssignmentRule::ExpectedPoint => space
            .assign_expected_point(set, &certain.centers, &counting)
            .ok_or(SolveError::RuleUnsupported {
                rule,
                space: space.name(),
            })?,
        AssignmentRule::OneCenter => assign_oc(set, &certain.centers, &reps, &counting),
    };
    report.distance_evals.assignment = counting.since(evals_before);

    // Step 4 (+ optional bound) and assembly.
    let mut solution = finish_pipeline(
        set,
        config,
        &counting,
        reps,
        certain,
        assignment,
        || space.lower_bound(set, k),
        report,
        t,
    );
    solution.report.timings.total = t_total.elapsed();
    Ok(solution)
}

/// The structure-of-arrays fast path of the continuous pipeline: one
/// [`PointStore`] per solve holds every realization coordinate, every
/// representative, and (for the grid strategy) every synthesized center;
/// all distance work then runs through the batched kernels of a
/// [`StoreOracle`] under the configured [`crate::SolverConfig::kernel`].
///
/// Returns `Ok(None)` when the space does not expose coordinates (custom
/// spaces, default [`ContinuousSpace::coords_of`]) or the coordinates are
/// unusable (mixed dimensions, non-finite values) — the caller then runs
/// the pointwise pipeline, whose behavior is unchanged.
///
/// Stage structure, evaluation counting, and tie-breaking mirror the
/// pointwise pipeline exactly; with [`ukc_metric::Kernel::Scalar`] the
/// results are bit-identical to it, and the evaluation *counts* are
/// kernel-independent by the [`DistanceOracle`] contract.
///
/// Parallelism: [`SolverConfig::resolved_threads`] lanes of the shared
/// [`ukc_pool::global`] pool drive every batched sweep (certain solve,
/// assignment, cost) through the pooled [`StoreOracle`]. The lane count
/// never reaches the arithmetic — chunk boundaries and reduction order
/// are pure functions of input size — so output, per-stage eval counts,
/// and digests are bit-identical for `threads = 1` and `threads = N`
/// (pinned by `tests/parallel_equivalence.rs`).
fn solve_continuous_store<P: Clone>(
    set: &UncertainSet<P>,
    k: usize,
    space: &dyn ContinuousSpace<P>,
    config: &SolverConfig,
) -> Result<Option<Solution<P>>, SolveError> {
    let rule = config.rule();
    // Probe the space: every location must expose coordinates of one
    // shared dimension.
    let mut dim = 0usize;
    for up in set.iter() {
        for loc in up.locations() {
            match space.coords_of(loc) {
                Some(c) if dim == 0 && !c.is_empty() => dim = c.len(),
                Some(c) if c.len() == dim => {}
                _ => return Ok(None),
            }
        }
    }
    let counter = DistCounter::new();
    let kernel = config.kernel();
    let exec = Exec::auto(config.resolved_threads());
    let weighted = config.assignment() == AssignmentMode::AdditivelyWeighted;
    let t_total = Instant::now();
    let mut method = method_string(space.name(), rule, config.strategy());
    if weighted {
        method.push_str("/weighted");
    }
    let mut report = Report {
        method,
        ..Report::default()
    };

    // id -> owning point, parallel to the store, for materializing output
    // centers without a reverse coordinate conversion.
    let mut registry: Vec<P> = Vec::with_capacity(set.total_locations() + set.n());
    let mut store = PointStore::with_capacity(dim, set.total_locations() + set.n());
    let push = |store: &mut PointStore, registry: &mut Vec<P>, p: &P| -> Option<PointId> {
        let coords = space.coords_of(p)?;
        let id = store.try_push(coords).ok()?;
        registry.push(p.clone());
        Some(id)
    };
    // The realization coordinates, point-major in support order (so the
    // flattened id order matches `UncertainSet::location_pool`).
    let mut id_points: Vec<UncertainPoint<PointId>> = Vec::with_capacity(set.n());
    for up in set.iter() {
        let mut ids = Vec::with_capacity(up.z());
        for loc in up.locations() {
            match push(&mut store, &mut registry, loc) {
                Some(id) => ids.push(id),
                None => return Ok(None),
            }
        }
        let mut next = ids.iter().copied();
        id_points.push(up.map_locations(|_| next.next().expect("one id per location")));
    }
    let set_ids = UncertainSet::new(id_points);

    // Step 1: representatives, O(nz) (ED/EP) or O(nz·iters) (OC) —
    // coordinate arithmetic, not metric evaluations (counted as zero, as
    // in the pointwise pipeline).
    let t = Instant::now();
    let reps: Vec<P> = match rule {
        AssignmentRule::ExpectedDistance | AssignmentRule::ExpectedPoint => {
            set.iter().map(|up| space.expected_point(up)).collect()
        }
        AssignmentRule::OneCenter => set.iter().map(|up| space.one_center(up)).collect(),
    };
    let mut rep_ids = Vec::with_capacity(reps.len());
    for rep in &reps {
        match push(&mut store, &mut registry, rep) {
            Some(id) => rep_ids.push(id),
            None => return Ok(None),
        }
    }
    report.timings.representatives = t.elapsed();
    report.distance_evals.representatives = counter.count();

    // Step 2: certain k-center on the representatives. The weighted mode
    // first derives per-point expected spreads `wᵢ = E d(Pᵢ, repᵢ)`
    // (through the counted oracle — they are metric evaluations), then
    // runs the additively-weighted Gonzalez sweep; the chosen centers
    // carry their source points' spreads into assignment and cost.
    let mut center_weights: Option<Vec<f64>> = None;
    let evals_before = counter.count();
    let t = Instant::now();
    let certain: KCenterSolution<PointId> = match config.strategy() {
        CertainStrategy::Gonzalez if weighted => {
            let oracle = StoreOracle::new(&store, kernel)
                .with_counter(&counter)
                .with_exec(exec);
            let spreads = expected_spreads_exec(&set_ids, &rep_ids, &oracle, exec);
            let idx = gonzalez_indices_weighted(&rep_ids, &spreads, k, &oracle, 0);
            let centers: Vec<PointId> = idx.iter().map(|&i| rep_ids[i]).collect();
            let weights: Vec<f64> = idx.iter().map(|&i| spreads[i]).collect();
            let radius = kcenter_cost_weighted(&rep_ids, &centers, &weights, &oracle);
            center_weights = Some(weights);
            KCenterSolution {
                centers,
                center_indices: idx,
                radius,
            }
        }
        CertainStrategy::Gonzalez => {
            let oracle = StoreOracle::new(&store, kernel)
                .with_counter(&counter)
                .with_exec(exec);
            gonzalez(&rep_ids, k, &oracle, 0)
        }
        CertainStrategy::GonzalezLocalSearch { rounds } => {
            let oracle = StoreOracle::new(&store, kernel)
                .with_counter(&counter)
                .with_exec(exec);
            let gz = gonzalez(&rep_ids, k, &oracle, 0);
            local_search_kcenter(&rep_ids, &rep_ids, &gz.center_indices, &oracle, rounds)
        }
        CertainStrategy::Grid => {
            // The certified grid solver synthesizes new center locations;
            // its internal work bypasses the oracle (and the counters),
            // exactly as in the pointwise pipeline.
            match space.certified_solve(&reps, k, config.grid_options(), exec) {
                Some(sol) => {
                    let mut ids = Vec::with_capacity(sol.centers.len());
                    for c in &sol.centers {
                        match push(&mut store, &mut registry, c) {
                            Some(id) => ids.push(id),
                            None => return Ok(None),
                        }
                    }
                    KCenterSolution {
                        centers: ids,
                        center_indices: sol.center_indices,
                        radius: sol.radius,
                    }
                }
                None => {
                    let oracle = StoreOracle::new(&store, kernel)
                        .with_counter(&counter)
                        .with_exec(exec);
                    gonzalez(&rep_ids, k, &oracle, 0)
                }
            }
        }
        CertainStrategy::ExactDiscrete => {
            let oracle = StoreOracle::new(&store, kernel)
                .with_counter(&counter)
                .with_exec(exec);
            let pool_storage;
            let pool: &[PointId] = match config.candidate_policy() {
                CandidatePolicy::ProblemPool => &rep_ids,
                CandidatePolicy::LocationPool => {
                    pool_storage = set_ids.location_pool();
                    &pool_storage
                }
            };
            exact_discrete_kcenter(&rep_ids, pool, k, &oracle, config.exact_options())
                .unwrap_or_else(|| gonzalez(&rep_ids, k, &oracle, 0))
        }
    };
    report.timings.certain_solve = t.elapsed();
    report.distance_evals.certain_solve = counter.since(evals_before);

    // The store is frozen from here on; one pooled oracle serves the tail.
    let oracle = StoreOracle::new(&store, kernel)
        .with_counter(&counter)
        .with_exec(exec);

    // Step 3: assignment by the configured rule.
    let evals_before = counter.count();
    let t = Instant::now();
    let assignment: Vec<usize> = match (rule, &center_weights) {
        (AssignmentRule::ExpectedDistance, None) => {
            assign_ed_exec(&set_ids, &certain.centers, &oracle, exec)
        }
        (AssignmentRule::ExpectedDistance, Some(w)) => {
            assign_ed_weighted_exec(&set_ids, &certain.centers, w, &oracle, exec)
        }
        // For the EP rule the representatives *are* the expected points
        // `P̄ᵢ`, so the expected-point assignment is nearest-center per
        // representative (the coords_of contract requires this semantics).
        // The weighted mode compares centers by `d(repᵢ, c) − w_c`
        // instead, through the same batched sweep shape.
        (AssignmentRule::ExpectedPoint, None) => {
            let mut nearest = vec![(0usize, 0.0f64); rep_ids.len()];
            oracle.nearest_each(&rep_ids, &certain.centers, &mut nearest);
            nearest.into_iter().map(|(i, _)| i).collect()
        }
        (AssignmentRule::ExpectedPoint, Some(w)) | (AssignmentRule::OneCenter, Some(w)) => {
            let mut nearest = vec![(0usize, 0.0f64); rep_ids.len()];
            oracle.nearest_each_weighted(&rep_ids, &certain.centers, w, &mut nearest);
            nearest.into_iter().map(|(i, _)| i).collect()
        }
        (AssignmentRule::OneCenter, None) => {
            assign_oc(&set_ids, &certain.centers, &rep_ids, &oracle)
        }
    };
    report.distance_evals.assignment = counter.since(evals_before);
    let evals_before_cost = counter.count();
    report.timings.assignment = t.elapsed();

    // Step 4: exact expected cost over the id-space mirror.
    let t_cost = Instant::now();
    let ecost = ecost_assigned_exec(&set_ids, &certain.centers, &assignment, &oracle, exec);
    report.timings.cost = t_cost.elapsed();
    report.distance_evals.cost = counter.since(evals_before_cost);

    // Optional stage 5: the certified lower bound (space-internal
    // arithmetic, uncounted — as in the pointwise pipeline).
    if config.computes_lower_bound() {
        let evals_before = counter.count();
        let t_bound = Instant::now();
        report.lower_bound = Some(space.lower_bound(set, k));
        report.timings.lower_bound = t_bound.elapsed();
        report.distance_evals.lower_bound = counter.since(evals_before);
    }

    report.timings.total = t_total.elapsed();
    Ok(Some(Solution {
        centers: certain
            .centers
            .iter()
            .map(|id| registry[id.index()].clone())
            .collect(),
        assignment,
        ecost,
        representatives: reps,
        certain_radius: certain.radius,
        report,
    }))
}

/// The general-metric pipeline (paper Theorems 2.6 / 2.7). Shared by
/// [`Problem::solve`] and the deprecated `solve_metric` wrapper.
pub(crate) fn solve_discrete<P: Clone>(
    set: &UncertainSet<P>,
    k: usize,
    metric: &(dyn Metric<P> + '_),
    pool: &[P],
    config: &SolverConfig,
) -> Result<Solution<P>, SolveError> {
    let rule = config.rule();
    if rule == AssignmentRule::ExpectedPoint {
        return Err(SolveError::RuleUnsupported {
            rule,
            space: "discrete",
        });
    }
    if config.strategy() == CertainStrategy::Grid {
        return Err(SolveError::StrategyUnsupported {
            strategy: "grid",
            space: "discrete",
        });
    }
    if config.assignment() == AssignmentMode::AdditivelyWeighted {
        return Err(SolveError::WeightedUnsupported {
            feature: "discrete problems",
        });
    }
    if pool.is_empty() {
        return Err(SolveError::EmptyCandidates);
    }
    let candidate_storage;
    let candidates: &[P] = match config.candidate_policy() {
        CandidatePolicy::ProblemPool => pool,
        CandidatePolicy::LocationPool => {
            candidate_storage = set.location_pool();
            &candidate_storage
        }
    };
    if candidates.is_empty() {
        return Err(SolveError::EmptyCandidates);
    }

    let counting = CountingMetric::new(metric);
    let t_total = Instant::now();
    let mut report = Report {
        method: method_string("discrete", rule, config.strategy()),
        ..Report::default()
    };

    // Step 1: discrete 1-center representatives, O(n·z·|candidates|).
    let t = Instant::now();
    let reps: Vec<P> = set
        .iter()
        .map(|up| {
            let (idx, _) = one_center_discrete(up, candidates, &counting);
            candidates[idx].clone()
        })
        .collect();
    report.timings.representatives = t.elapsed();
    report.distance_evals.representatives = counting.count();

    // Step 2: certain k-center on the representatives, centers from the
    // candidate pool.
    let evals_before = counting.count();
    let t = Instant::now();
    let certain = match config.strategy() {
        CertainStrategy::Grid => unreachable!("rejected above"),
        CertainStrategy::Gonzalez => gonzalez(&reps, k, &counting, 0),
        CertainStrategy::GonzalezLocalSearch { rounds } => {
            let gz = gonzalez(&reps, k, &counting, 0);
            // Swap over the full candidate pool, not just the reps; locate
            // each chosen rep in the pool by distance-zero match (reps are
            // pool members).
            let initial: Vec<usize> = gz
                .center_indices
                .iter()
                .map(|&ri| {
                    candidates
                        .iter()
                        .position(|c| counting.dist(c, &reps[ri]) == 0.0)
                        .expect("representatives come from the pool")
                })
                .collect();
            local_search_kcenter(&reps, candidates, &initial, &counting, rounds)
        }
        CertainStrategy::ExactDiscrete => {
            exact_discrete_kcenter(&reps, candidates, k, &counting, config.exact_options())
                .unwrap_or_else(|| gonzalez(&reps, k, &counting, 0))
        }
    };
    report.timings.certain_solve = t.elapsed();
    report.distance_evals.certain_solve = counting.since(evals_before);

    // Step 3: assignment.
    let evals_before = counting.count();
    let t = Instant::now();
    let assignment = match rule {
        AssignmentRule::ExpectedDistance => assign_ed(set, &certain.centers, &counting),
        AssignmentRule::ExpectedPoint => unreachable!("rejected above"),
        AssignmentRule::OneCenter => assign_oc(set, &certain.centers, &reps, &counting),
    };
    report.distance_evals.assignment = counting.since(evals_before);

    // Step 4 (+ optional bound) and assembly.
    let mut solution = finish_pipeline(
        set,
        config,
        &counting,
        reps,
        certain,
        assignment,
        || crate::bounds::lower_bound_metric(set, k, candidates, &counting),
        report,
        t,
    );
    solution.report.timings.total = t_total.elapsed();
    Ok(solution)
}

/// Solves every problem under one config, fanning out across the shared
/// [`ukc_pool::global`] worker pool. Output order matches input order,
/// and every solution is bit-identical to what the sequential loop
/// `problems.iter().map(|p| p.solve(config))` produces — each solve is
/// independent and deterministic, so pool scheduling cannot leak into
/// results.
///
/// Uses one lane per available CPU, capped at the batch size.
pub fn solve_batch<P: Clone + Send + Sync>(
    problems: &[Problem<P>],
    config: &SolverConfig,
) -> Vec<Result<Solution<P>, SolveError>> {
    solve_batch_threads(problems, config, ukc_pool::default_threads())
}

/// [`solve_batch`] with an explicit lane cap (`0` and `1` both mean
/// sequential).
///
/// Lanes come from the process-wide [`ukc_pool::global`] pool — the same
/// pool the intra-solve kernels draw on — so batch fan-out and
/// per-solve parallelism *cooperate* under one fixed worker set instead
/// of multiplying thread counts. Each problem is one pool chunk; a lane
/// solving a problem that itself parallelizes simply submits nested
/// chunks to the same pool (deadlock-free: the submitting lane always
/// participates).
pub fn solve_batch_threads<P: Clone + Send + Sync>(
    problems: &[Problem<P>],
    config: &SolverConfig,
    threads: usize,
) -> Vec<Result<Solution<P>, SolveError>> {
    let threads = threads.min(problems.len());
    if threads <= 1 {
        return problems.iter().map(|p| p.solve(config)).collect();
    }
    let mut slots: Vec<Option<Result<Solution<P>, SolveError>>> = Vec::new();
    slots.resize_with(problems.len(), || None);
    ukc_pool::for_each_slice(
        Exec::pooled(ukc_pool::global(), threads),
        &mut slots,
        1,
        |i, slot| slot[0] = Some(problems[i].solve(config)),
    );
    slots
        .into_iter()
        .map(|slot| slot.expect("the pool executes every chunk exactly once"))
        .collect()
}
