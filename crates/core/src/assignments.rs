//! The paper's three assignment rules.
//!
//! In the assigned versions of the problem every uncertain point is served
//! by one center across all realizations. The paper studies three rules for
//! picking that center:
//!
//! * **expected distance** (`ED`, from Wang & Zhang \[26\]):
//!   `ED(Pᵢ) = argmin_c Σⱼ pᵢⱼ·d(Pᵢⱼ, c)` — works in any metric space;
//! * **expected point** (`EP`, new in the paper, Euclidean only):
//!   `EP(Pᵢ) = argmin_c d(P̄ᵢ, c)`;
//! * **1-center** (`OC`, new in the paper, any metric space):
//!   `OC(Pᵢ) = argmin_c d(P̃ᵢ, c)`.
//!
//! All three return, for each point, the index of its assigned center;
//! ties break toward the lower center index (deterministic output).

use ukc_metric::{DistanceOracle, Point, PAR_CHUNK, PAR_MIN_POINTS};
use ukc_pool::Exec;
use ukc_uncertain::{expected_distance, expected_point, UncertainSet};

/// Assignment rules available in Euclidean space (paper Theorems 2.2,
/// 2.4, 2.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AssignmentRule {
    /// Assign to the center with the smallest expected distance.
    ExpectedDistance,
    /// Assign to the center nearest the expected point `P̄`.
    ExpectedPoint,
    /// Assign to the center nearest the 1-center `P̃` (also valid in
    /// Euclidean space; primarily used for the ablation studies).
    OneCenter,
}

/// Assignment rules available in a general metric space (paper Theorems
/// 2.3, 2.6, 2.7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricAssignmentRule {
    /// Assign to the center with the smallest expected distance.
    ExpectedDistance,
    /// Assign to the center nearest the 1-center `P̃`.
    OneCenter,
}

/// One point's ED argmin: `argmin_c E d(Pᵢ, c)`, ties to the lower index.
fn ed_argmin<P, M: DistanceOracle<P>>(
    up: &ukc_uncertain::UncertainPoint<P>,
    centers: &[P],
    metric: &M,
) -> usize {
    let mut best = 0usize;
    let mut best_v = f64::INFINITY;
    for (c, center) in centers.iter().enumerate() {
        let v = expected_distance(up, center, metric);
        if v < best_v {
            best_v = v;
            best = c;
        }
    }
    best
}

/// Expected-distance assignment: each point goes to
/// `argmin_c E d(Pᵢ, c)`. O(n·z·k) distance evaluations.
///
/// # Panics
/// Panics when `centers` is empty.
pub fn assign_ed<P, M: DistanceOracle<P>>(
    set: &UncertainSet<P>,
    centers: &[P],
    metric: &M,
) -> Vec<usize> {
    assert!(!centers.is_empty(), "need at least one center");
    set.iter()
        .map(|up| ed_argmin(up, centers, metric))
        .collect()
}

/// [`assign_ed`] with an execution context: points are assigned in
/// block-parallel chunks on the pool. Each point's argmin is computed by
/// the exact sequential arithmetic, so the assignment — and the
/// distance-eval count — is identical for every `exec`.
///
/// # Panics
/// Panics when `centers` is empty.
pub fn assign_ed_exec<P: Sync, M: DistanceOracle<P> + Sync>(
    set: &UncertainSet<P>,
    centers: &[P],
    metric: &M,
    exec: Exec<'_>,
) -> Vec<usize> {
    if !exec.is_parallel() || set.n() < PAR_MIN_POINTS {
        return assign_ed(set, centers, metric);
    }
    assert!(!centers.is_empty(), "need at least one center");
    let mut out = vec![0usize; set.n()];
    ukc_pool::for_each_slice(exec, &mut out, PAR_CHUNK, |start, slice| {
        for (j, o) in slice.iter_mut().enumerate() {
            *o = ed_argmin(&set[start + j], centers, metric);
        }
    });
    out
}

/// One point's weighted ED argmin: `argmin_c (E d(Pᵢ, c) − w_c)`, ties
/// to the lower index. With all-zero weights this is [`ed_argmin`]
/// comparison for comparison (`x − 0.0 == x` exactly).
fn ed_argmin_weighted<P, M: DistanceOracle<P>>(
    up: &ukc_uncertain::UncertainPoint<P>,
    centers: &[P],
    weights: &[f64],
    metric: &M,
) -> usize {
    let mut best = 0usize;
    let mut best_v = f64::INFINITY;
    for (c, center) in centers.iter().enumerate() {
        let v = expected_distance(up, center, metric) - weights[c];
        if v < best_v {
            best_v = v;
            best = c;
        }
    }
    best
}

/// Additively-weighted expected-distance assignment: each point goes to
/// `argmin_c (E d(Pᵢ, c) − w_c)`. Same O(n·z·k) distance-eval count as
/// [`assign_ed`].
///
/// # Panics
/// Panics when `centers` is empty or `weights.len() != centers.len()`.
pub fn assign_ed_weighted<P, M: DistanceOracle<P>>(
    set: &UncertainSet<P>,
    centers: &[P],
    weights: &[f64],
    metric: &M,
) -> Vec<usize> {
    assert!(!centers.is_empty(), "need at least one center");
    assert_eq!(weights.len(), centers.len(), "one weight per center");
    set.iter()
        .map(|up| ed_argmin_weighted(up, centers, weights, metric))
        .collect()
}

/// [`assign_ed_weighted`] with an execution context; identical output and
/// eval count for every `exec` (same contract as [`assign_ed_exec`]).
///
/// # Panics
/// Panics when `centers` is empty or `weights.len() != centers.len()`.
pub fn assign_ed_weighted_exec<P: Sync, M: DistanceOracle<P> + Sync>(
    set: &UncertainSet<P>,
    centers: &[P],
    weights: &[f64],
    metric: &M,
    exec: Exec<'_>,
) -> Vec<usize> {
    if !exec.is_parallel() || set.n() < PAR_MIN_POINTS {
        return assign_ed_weighted(set, centers, weights, metric);
    }
    assert!(!centers.is_empty(), "need at least one center");
    assert_eq!(weights.len(), centers.len(), "one weight per center");
    let mut out = vec![0usize; set.n()];
    ukc_pool::for_each_slice(exec, &mut out, PAR_CHUNK, |start, slice| {
        for (j, o) in slice.iter_mut().enumerate() {
            *o = ed_argmin_weighted(&set[start + j], centers, weights, metric);
        }
    });
    out
}

/// Expected-point assignment: each point goes to the center nearest its
/// expected point `P̄ᵢ`. O(n·(z + k)).
///
/// # Panics
/// Panics when `centers` is empty.
pub fn assign_ep<M: DistanceOracle<Point>>(
    set: &UncertainSet<Point>,
    centers: &[Point],
    metric: &M,
) -> Vec<usize> {
    assert!(!centers.is_empty(), "need at least one center");
    set.iter()
        .map(|up| {
            let pbar = expected_point(up);
            metric.nearest(&pbar, centers).expect("non-empty centers").0
        })
        .collect()
}

/// 1-center assignment: each point goes to the center nearest its 1-center
/// representative `P̃ᵢ`. The representatives are passed in because their
/// construction differs by space (Weiszfeld in Euclidean, discrete 1-median
/// in finite metrics) and they are typically already computed by the solver
/// pipeline.
///
/// # Panics
/// Panics when `centers` is empty or `reps.len() != set.n()`.
pub fn assign_oc<P, M: DistanceOracle<P>>(
    set: &UncertainSet<P>,
    centers: &[P],
    reps: &[P],
    metric: &M,
) -> Vec<usize> {
    assert!(!centers.is_empty(), "need at least one center");
    assert_eq!(reps.len(), set.n(), "one representative per point required");
    // The batched nearest sweep: a pool-backed oracle parallelizes it
    // across representatives with identical output and eval counts.
    let mut nearest = vec![(0usize, 0.0f64); reps.len()];
    metric.nearest_each(reps, centers, &mut nearest);
    nearest.into_iter().map(|(i, _)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ukc_metric::Euclidean;
    use ukc_uncertain::{one_center_euclidean, UncertainPoint};

    fn set_two_groups() -> UncertainSet<Point> {
        UncertainSet::new(vec![
            UncertainPoint::new(vec![Point::scalar(0.0), Point::scalar(2.0)], vec![0.5, 0.5])
                .unwrap(),
            UncertainPoint::new(
                vec![Point::scalar(10.0), Point::scalar(12.0)],
                vec![0.5, 0.5],
            )
            .unwrap(),
        ])
    }

    #[test]
    fn ed_assigns_to_nearest_in_expectation() {
        let s = set_two_groups();
        let centers = vec![Point::scalar(1.0), Point::scalar(11.0)];
        assert_eq!(assign_ed(&s, &centers, &Euclidean), vec![0, 1]);
    }

    #[test]
    fn ep_assigns_via_expected_point() {
        let s = set_two_groups();
        let centers = vec![Point::scalar(1.0), Point::scalar(11.0)];
        assert_eq!(assign_ep(&s, &centers, &Euclidean), vec![0, 1]);
    }

    #[test]
    fn oc_assigns_via_representatives() {
        let s = set_two_groups();
        let centers = vec![Point::scalar(1.0), Point::scalar(11.0)];
        let reps: Vec<Point> = s.iter().map(one_center_euclidean).collect();
        assert_eq!(assign_oc(&s, &centers, &reps, &Euclidean), vec![0, 1]);
    }

    #[test]
    fn ed_and_ep_can_disagree() {
        // A point whose expected point is near center A, but whose expected
        // distance is smaller to center B: mass split between two far
        // locations; EP looks at the centroid, ED at the realizations.
        let up = UncertainPoint::new(
            vec![Point::new(vec![-10.0, 0.0]), Point::new(vec![10.0, 0.0])],
            vec![0.5, 0.5],
        )
        .unwrap();
        let s = UncertainSet::new(vec![up]);
        // Center A at the centroid (origin), center B at one location.
        let centers = vec![Point::new(vec![0.0, 0.1]), Point::new(vec![10.0, 0.0])];
        let ep = assign_ep(&s, &centers, &Euclidean);
        assert_eq!(ep, vec![0], "EP must pick the centroid-adjacent center");
        // E d to A ≈ 10.0; E d to B = 0.5*20 + 0 = 10.0 — construct a
        // sharper case: move B slightly toward the midpoint.
        let centers2 = vec![Point::new(vec![0.0, 5.0]), Point::new(vec![9.0, 0.0])];
        let ed = assign_ed(&s, &centers2, &Euclidean);
        let ep2 = assign_ep(&s, &centers2, &Euclidean);
        // E d to A = sqrt(125) ≈ 11.18; E d to B = 0.5*19 + 0.5*1 = 10.
        assert_eq!(ed, vec![1]);
        // d(P̄, A) = 5 < d(P̄, B) = 9.
        assert_eq!(ep2, vec![0]);
    }

    #[test]
    fn weighted_ed_with_zero_weights_matches_plain_and_weight_flips_winner() {
        let s = set_two_groups();
        let centers = vec![Point::scalar(1.0), Point::scalar(11.0)];
        let zeros = vec![0.0; centers.len()];
        assert_eq!(
            assign_ed_weighted(&s, &centers, &zeros, &Euclidean),
            assign_ed(&s, &centers, &Euclidean)
        );
        // A big credit on center 1 pulls everyone over.
        let heavy = vec![0.0, 100.0];
        assert_eq!(
            assign_ed_weighted(&s, &centers, &heavy, &Euclidean),
            vec![1, 1]
        );
        // Exec variant agrees on the sequential fallback path.
        assert_eq!(
            assign_ed_weighted_exec(&s, &centers, &heavy, &Euclidean, Exec::sequential()),
            vec![1, 1]
        );
    }

    #[test]
    fn ties_break_to_lower_index() {
        let s = UncertainSet::new(vec![UncertainPoint::certain(Point::scalar(0.0))]);
        let centers = vec![Point::scalar(1.0), Point::scalar(-1.0)];
        assert_eq!(assign_ed(&s, &centers, &Euclidean), vec![0]);
        assert_eq!(assign_ep(&s, &centers, &Euclidean), vec![0]);
        let reps = vec![Point::scalar(0.0)];
        assert_eq!(assign_oc(&s, &centers, &reps, &Euclidean), vec![0]);
    }

    #[test]
    #[should_panic(expected = "at least one center")]
    fn empty_centers_panic() {
        let s = set_two_groups();
        let _ = assign_ed(&s, &[], &Euclidean);
    }
}
