//! Typed errors for the public solve path.
//!
//! Nothing in the [`crate::Problem`] / [`crate::SolverConfig`] API panics
//! on user input: every rejection is a [`SolveError`] variant precise
//! enough for a caller (or an API gateway) to turn into an actionable
//! message without string matching.

use crate::assignments::AssignmentRule;

/// Everything that can be wrong with a problem, a configuration, or their
/// combination.
#[derive(Clone, Debug, PartialEq)]
pub enum SolveError {
    /// `k == 0`: a k-center instance needs at least one center.
    ZeroK,
    /// The instance has no uncertain points.
    EmptySet,
    /// `k` exceeds the number of uncertain points.
    KExceedsN {
        /// Requested number of centers.
        k: usize,
        /// Number of uncertain points in the instance.
        n: usize,
    },
    /// A discrete problem was given an empty candidate pool.
    EmptyCandidates,
    /// Two locations of the instance live in different dimensions; the
    /// pipeline requires one ambient `ℝ^d`.
    DimensionMismatch {
        /// Index of the uncertain point carrying the offending location.
        point: usize,
        /// Dimension found.
        got: usize,
        /// Dimension of the instance's first location.
        expected: usize,
    },
    /// The assignment rule is not defined in the problem's space (e.g.
    /// the expected-point rule in a general metric space, where no
    /// expected point exists).
    RuleUnsupported {
        /// The offending rule.
        rule: AssignmentRule,
        /// Short name of the problem's space ("euclidean", "discrete").
        space: &'static str,
    },
    /// The certain-solver strategy is not available in the problem's
    /// space (e.g. the Euclidean grid solver on a graph metric).
    StrategyUnsupported {
        /// Short name of the strategy.
        strategy: &'static str,
        /// Short name of the problem's space.
        space: &'static str,
    },
    /// The additively-weighted assignment mode was combined with a
    /// feature it does not support (it requires the Gonzalez strategy on
    /// a continuous Euclidean coordinate instance).
    WeightedUnsupported {
        /// Short name of the unsupported feature ("strategy grid",
        /// "discrete problems", ...).
        feature: &'static str,
    },
    /// The configured ε is not a positive finite number.
    BadEpsilon {
        /// The rejected value.
        eps: f64,
    },
    /// [`crate::SolverConfig::table1_row`] was asked for a row the
    /// paper's Table 1 does not have.
    UnknownTableRow {
        /// The rejected row number (valid rows are 1..=9).
        row: usize,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::ZeroK => write!(f, "k must be at least 1"),
            SolveError::EmptySet => write!(f, "instance has no uncertain points"),
            SolveError::KExceedsN { k, n } => {
                write!(f, "k = {k} exceeds the number of uncertain points n = {n}")
            }
            SolveError::EmptyCandidates => {
                write!(f, "discrete problems need a non-empty candidate pool")
            }
            SolveError::DimensionMismatch {
                point,
                got,
                expected,
            } => {
                write!(
                    f,
                    "point {point} has a location of dimension {got}, expected {expected}"
                )
            }
            SolveError::RuleUnsupported { rule, space } => {
                write!(
                    f,
                    "assignment rule {rule:?} is not defined in the {space} space"
                )
            }
            SolveError::StrategyUnsupported { strategy, space } => {
                write!(
                    f,
                    "certain solver {strategy} is not available in the {space} space"
                )
            }
            SolveError::WeightedUnsupported { feature } => {
                write!(
                    f,
                    "additively-weighted assignment does not support {feature}"
                )
            }
            SolveError::BadEpsilon { eps } => {
                write!(f, "epsilon must be a positive finite number, got {eps}")
            }
            SolveError::UnknownTableRow { row } => {
                write!(f, "the paper's Table 1 has rows 1..=9, got {row}")
            }
        }
    }
}

impl std::error::Error for SolveError {}
