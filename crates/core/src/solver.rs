//! The legacy free-function solver API, kept as thin deprecated wrappers.
//!
//! [`solve_euclidean`] and [`solve_metric`] predate the
//! [`Problem`](crate::Problem) / [`SolverConfig`] /
//! [`Solution`](crate::Solution) API and survive only for source
//! compatibility. They delegate to the exact same internal pipelines the
//! new API runs, so their outputs are bit-identical to
//! [`Problem::solve`](crate::Problem::solve) under the corresponding
//! config (proven by the `golden_equivalence` test suite).
//!
//! Migration:
//!
//! | legacy | new |
//! |---|---|
//! | `solve_euclidean(&set, k, rule, solver)` | `Problem::euclidean(set, k)?.solve(&cfg)?` |
//! | `solve_metric(&set, k, rule, solver, &pool, &m)` | `Problem::in_metric(set, k, m, pool)?.solve(&cfg)?` |
//! | `CertainSolver::Grid(opts)` | `.strategy(CertainStrategy::Grid).grid_limits(opts)` |
//! | panics on `k == 0` | `Err(SolveError::ZeroK)` |
//!
//! The (solver, rule) combination determines the proven factor:
//!
//! | space | solver (certain factor `1+ε`) | rule | proven factor | table row |
//! |---|---|---|---|---|
//! | Euclidean | Gonzalez (2) | ED | 6 | 2 |
//! | Euclidean | Grid (1+ε) | ED | 5+ε | 3 |
//! | Euclidean | Gonzalez (2) | EP | 4 | 4, 6 |
//! | Euclidean | Grid (1+ε) | EP | 3+ε | 5, 7 |
//! | any metric | Gonzalez (2) | ED | 7+2·1 = 9 → with (1+ε): 7+2ε | (2.6) |
//! | any metric | Gonzalez (2) | OC | 5+2·1 = 7 → with (1+ε): 5+2ε | 9 (2.7) |

use crate::assignments::{AssignmentRule, MetricAssignmentRule};
use crate::config::{CertainStrategy, SolverConfig};
use crate::problem::{solve_continuous, solve_discrete, EuclideanSpace};
use ukc_kcenter::{ExactOptions, GridOptions};
use ukc_metric::{Metric, Point};
use ukc_uncertain::UncertainSet;

/// Deterministic k-center strategies for Euclidean representative points
/// (legacy twin of [`CertainStrategy`]).
#[derive(Clone, Copy, Debug)]
pub enum CertainSolver {
    /// Gonzalez greedy: factor 2, O(nk) — the paper's Remark 3.1 choice.
    Gonzalez,
    /// Gonzalez followed by best-improvement single swaps over the
    /// representative pool (factor still 2, usually much better).
    GonzalezLocalSearch {
        /// Maximum swap rounds.
        rounds: usize,
    },
    /// Certified (1+ε) grid solver (low dimension); falls back to Gonzalez
    /// when the grid exceeds its candidate caps.
    Grid(GridOptions),
    /// Exact discrete k-center over the representative pool itself
    /// (a (1+ε)=2-level guarantee w.r.t. the continuous optimum, exact
    /// w.r.t. the discrete one); falls back to Gonzalez beyond its limits.
    ExactDiscrete(ExactOptions),
}

/// Deterministic k-center strategies over a discrete candidate pool in a
/// general metric space (legacy twin of [`CertainStrategy`]).
#[derive(Clone, Copy, Debug)]
pub enum MetricCertainSolver {
    /// Gonzalez greedy over the representatives.
    Gonzalez,
    /// Gonzalez + single-swap local search over the candidate pool.
    GonzalezLocalSearch {
        /// Maximum swap rounds.
        rounds: usize,
    },
    /// Exact discrete k-center with centers drawn from the candidate pool;
    /// falls back to Gonzalez beyond its limits.
    ExactDiscrete(ExactOptions),
}

/// The output of [`solve_euclidean`].
#[derive(Clone, Debug)]
pub struct EuclideanSolution {
    /// The k chosen centers.
    pub centers: Vec<Point>,
    /// `assignment[i]` = index into `centers` serving point `i`.
    pub assignment: Vec<usize>,
    /// Exact expected cost `EcostA` of (centers, assignment).
    pub ecost: f64,
    /// The representative points the certain solver ran on (`P̄` for
    /// ED/EP rules, `P̃` for the OC rule).
    pub representatives: Vec<Point>,
    /// The certain k-center radius achieved on the representatives.
    pub certain_radius: f64,
}

/// The output of [`solve_metric`].
#[derive(Clone, Debug)]
pub struct MetricSolution<P> {
    /// The k chosen centers (drawn from the candidate pool).
    pub centers: Vec<P>,
    /// `assignment[i]` = index into `centers` serving point `i`.
    pub assignment: Vec<usize>,
    /// Exact expected cost `EcostA` of (centers, assignment).
    pub ecost: f64,
    /// The 1-center representatives `P̃ᵢ` (drawn from the candidate pool).
    pub representatives: Vec<P>,
    /// The certain k-center radius achieved on the representatives.
    pub certain_radius: f64,
}

fn legacy_config(
    rule: AssignmentRule,
    strategy: CertainStrategy,
    grid: Option<GridOptions>,
    exact: Option<ExactOptions>,
) -> SolverConfig {
    let mut builder = SolverConfig::builder()
        .rule(rule)
        .strategy(strategy)
        .lower_bound(false);
    if let Some(opts) = grid {
        builder = builder.grid_limits(opts);
    }
    if let Some(opts) = exact {
        builder = builder.exact_limits(opts);
    }
    // The legacy API forwarded caller options unvalidated; keep that
    // contract (an absurd ε just makes the grid solver fall back).
    builder.build_unchecked()
}

/// Runs the paper's Euclidean pipeline (Theorems 2.2 / 2.4 / 2.5 and
/// Remark 3.1).
///
/// Representatives are the expected points `P̄ᵢ` for the `ED`/`EP` rules
/// and the Weiszfeld 1-centers `P̃ᵢ` for the `OC` rule. The returned
/// expected cost is exact.
///
/// # Panics
/// Panics when `k == 0`. The replacement API returns
/// [`SolveError::ZeroK`](crate::SolveError::ZeroK) instead.
#[deprecated(
    since = "0.2.0",
    note = "use Problem::euclidean(set, k)?.solve(&SolverConfig) instead"
)]
pub fn solve_euclidean(
    set: &UncertainSet<Point>,
    k: usize,
    rule: AssignmentRule,
    solver: CertainSolver,
) -> EuclideanSolution {
    assert!(k > 0, "k must be at least 1");
    let (strategy, grid, exact) = match solver {
        CertainSolver::Gonzalez => (CertainStrategy::Gonzalez, None, None),
        CertainSolver::GonzalezLocalSearch { rounds } => {
            (CertainStrategy::GonzalezLocalSearch { rounds }, None, None)
        }
        CertainSolver::Grid(opts) => (CertainStrategy::Grid, Some(opts), None),
        CertainSolver::ExactDiscrete(opts) => (CertainStrategy::ExactDiscrete, None, Some(opts)),
    };
    let config = legacy_config(rule, strategy, grid, exact);
    let sol = solve_continuous(set, k, &EuclideanSpace, &config)
        .expect("the legacy Euclidean pipeline accepts every rule and strategy");
    EuclideanSolution {
        centers: sol.centers,
        assignment: sol.assignment,
        ecost: sol.ecost,
        representatives: sol.representatives,
        certain_radius: sol.certain_radius,
    }
}

/// Runs the paper's general-metric pipeline (Theorems 2.6 / 2.7).
///
/// `candidates` is the pool centers and representatives are drawn from —
/// typically the set's full location pool (see
/// `UncertainSet::location_pool`) or, when the metric space itself is
/// finite, all of its points. Representatives are the discrete 1-centers
/// `P̃ᵢ = argmin_{c∈candidates} E d(Pᵢ, c)`.
///
/// ```
/// # #![allow(deprecated)]
/// use ukc_core::{solve_metric, MetricAssignmentRule, MetricCertainSolver};
/// use ukc_metric::WeightedGraph;
/// use ukc_uncertain::generators::{on_finite_metric, ProbModel};
///
/// let road = WeightedGraph::grid(4, 4, 1.0).shortest_path_metric().unwrap();
/// let set = on_finite_metric(1, road.len(), 10, 3, ProbModel::Random);
/// let ids = road.ids();
/// let sol = solve_metric(
///     &set, 2,
///     MetricAssignmentRule::OneCenter,       // Theorem 2.7: factor 5+2ε
///     MetricCertainSolver::Gonzalez,
///     &ids, &road,
/// );
/// assert_eq!(sol.centers.len(), 2);
/// assert!(sol.ecost.is_finite());
/// ```
///
/// # Panics
/// Panics when `k == 0` or `candidates` is empty. The replacement API
/// returns typed [`SolveError`](crate::SolveError)s instead.
#[deprecated(
    since = "0.2.0",
    note = "use Problem::in_metric(set, k, metric, pool)?.solve(&SolverConfig) instead"
)]
pub fn solve_metric<P: Clone, M: Metric<P>>(
    set: &UncertainSet<P>,
    k: usize,
    rule: MetricAssignmentRule,
    solver: MetricCertainSolver,
    candidates: &[P],
    metric: &M,
) -> MetricSolution<P> {
    assert!(k > 0, "k must be at least 1");
    assert!(!candidates.is_empty(), "need a candidate pool");
    let rule = match rule {
        MetricAssignmentRule::ExpectedDistance => AssignmentRule::ExpectedDistance,
        MetricAssignmentRule::OneCenter => AssignmentRule::OneCenter,
    };
    let (strategy, exact) = match solver {
        MetricCertainSolver::Gonzalez => (CertainStrategy::Gonzalez, None),
        MetricCertainSolver::GonzalezLocalSearch { rounds } => {
            (CertainStrategy::GonzalezLocalSearch { rounds }, None)
        }
        MetricCertainSolver::ExactDiscrete(opts) => (CertainStrategy::ExactDiscrete, Some(opts)),
    };
    let config = legacy_config(rule, strategy, None, exact);
    let sol = solve_discrete(set, k, metric as &dyn Metric<P>, candidates, &config)
        .expect("the legacy metric pipeline accepts every rule and strategy");
    MetricSolution {
        centers: sol.centers,
        assignment: sol.assignment,
        ecost: sol.ecost,
        representatives: sol.representatives,
        certain_radius: sol.certain_radius,
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use ukc_metric::FiniteMetric;
    use ukc_uncertain::generators::{clustered, on_finite_metric, ProbModel};
    use ukc_uncertain::UncertainPoint;

    #[test]
    fn euclidean_pipeline_produces_k_centers() {
        let set = clustered(1, 20, 3, 2, 3, 4.0, 0.5, ProbModel::Random);
        for rule in [
            AssignmentRule::ExpectedDistance,
            AssignmentRule::ExpectedPoint,
            AssignmentRule::OneCenter,
        ] {
            let sol = solve_euclidean(&set, 3, rule, CertainSolver::Gonzalez);
            assert_eq!(sol.centers.len(), 3);
            assert_eq!(sol.assignment.len(), 20);
            assert!(sol.ecost.is_finite() && sol.ecost >= 0.0);
            assert_eq!(sol.representatives.len(), 20);
        }
    }

    #[test]
    fn better_certain_solver_never_hurts_certain_radius() {
        let set = clustered(2, 15, 3, 2, 3, 4.0, 0.5, ProbModel::Uniform);
        let gz = solve_euclidean(
            &set,
            3,
            AssignmentRule::ExpectedPoint,
            CertainSolver::Gonzalez,
        );
        let ls = solve_euclidean(
            &set,
            3,
            AssignmentRule::ExpectedPoint,
            CertainSolver::GonzalezLocalSearch { rounds: 50 },
        );
        let ex = solve_euclidean(
            &set,
            3,
            AssignmentRule::ExpectedPoint,
            CertainSolver::ExactDiscrete(ExactOptions::default()),
        );
        assert!(ls.certain_radius <= gz.certain_radius + 1e-12);
        assert!(ex.certain_radius <= ls.certain_radius + 1e-12);
    }

    #[test]
    fn separated_clusters_get_separated_centers() {
        // Two clusters 100 apart; any sensible pipeline separates them and
        // the expected cost is on the cluster scale, not the gap scale.
        let mk = |base: f64, seed: u64| {
            let mut pts = Vec::new();
            let mut s = seed | 1;
            let mut rnd = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 11) as f64 / (1u64 << 53) as f64
            };
            for _ in 0..5 {
                let nominal = base + rnd() * 2.0;
                pts.push(
                    UncertainPoint::new(
                        vec![Point::scalar(nominal - 0.5), Point::scalar(nominal + 0.5)],
                        vec![0.5, 0.5],
                    )
                    .unwrap(),
                );
            }
            pts
        };
        let mut pts = mk(0.0, 3);
        pts.extend(mk(100.0, 4));
        let set = UncertainSet::new(pts);
        let sol = solve_euclidean(
            &set,
            2,
            AssignmentRule::ExpectedDistance,
            CertainSolver::Gonzalez,
        );
        assert!(
            sol.ecost < 10.0,
            "ecost {} should be cluster-scale",
            sol.ecost
        );
        // Points 0..5 share a center; points 5..10 share the other.
        assert!(sol.assignment[..5].iter().all(|&a| a == sol.assignment[0]));
        assert!(sol.assignment[5..].iter().all(|&a| a == sol.assignment[5]));
        assert_ne!(sol.assignment[0], sol.assignment[5]);
    }

    #[test]
    fn metric_pipeline_on_graph() {
        let g = ukc_metric::WeightedGraph::grid(4, 5, 1.0);
        let fm: FiniteMetric = g.shortest_path_metric().unwrap();
        let set = on_finite_metric(7, fm.len(), 8, 3, ProbModel::Random);
        let pool = set.location_pool();
        for rule in [
            MetricAssignmentRule::ExpectedDistance,
            MetricAssignmentRule::OneCenter,
        ] {
            let sol = solve_metric(&set, 2, rule, MetricCertainSolver::Gonzalez, &pool, &fm);
            assert_eq!(sol.centers.len(), 2);
            assert!(sol.ecost.is_finite() && sol.ecost >= 0.0);
            // Centers drawn from the pool.
            for c in &sol.centers {
                assert!(pool.contains(c));
            }
        }
    }

    #[test]
    fn metric_exact_solver_beats_greedy_certain_radius() {
        let g = ukc_metric::WeightedGraph::cycle(12, 1.0);
        let fm = g.shortest_path_metric().unwrap();
        let set = on_finite_metric(5, fm.len(), 6, 2, ProbModel::Uniform);
        let pool = set.location_pool();
        let gz = solve_metric(
            &set,
            2,
            MetricAssignmentRule::OneCenter,
            MetricCertainSolver::Gonzalez,
            &pool,
            &fm,
        );
        let ex = solve_metric(
            &set,
            2,
            MetricAssignmentRule::OneCenter,
            MetricCertainSolver::ExactDiscrete(ExactOptions::default()),
            &pool,
            &fm,
        );
        assert!(ex.certain_radius <= gz.certain_radius + 1e-12);
    }

    #[test]
    fn certain_points_collapse_to_deterministic_kcenter() {
        // With certain points the pipeline must equal deterministic
        // k-center: representatives are the points themselves.
        let pts: Vec<UncertainPoint<Point>> = [0.0, 1.0, 10.0, 11.0]
            .iter()
            .map(|&x| UncertainPoint::certain(Point::scalar(x)))
            .collect();
        let set = UncertainSet::new(pts);
        let sol = solve_euclidean(
            &set,
            2,
            AssignmentRule::ExpectedPoint,
            CertainSolver::ExactDiscrete(ExactOptions::default()),
        );
        // Optimal deterministic assignment splits {0,1} and {10,11} with
        // max distance 1 from a chosen location; expected cost equals the
        // deterministic cost.
        assert!(sol.ecost <= 1.0 + 1e-9, "ecost {}", sol.ecost);
    }

    #[test]
    fn k_one_all_assigned_to_single_center() {
        let set = clustered(5, 8, 2, 2, 2, 3.0, 0.5, ProbModel::Random);
        let sol = solve_euclidean(
            &set,
            1,
            AssignmentRule::ExpectedDistance,
            CertainSolver::Gonzalez,
        );
        assert_eq!(sol.centers.len(), 1);
        assert!(sol.assignment.iter().all(|&a| a == 0));
    }
}
