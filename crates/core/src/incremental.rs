//! The incremental-solve layer: warm starts and batch leave-one-out.
//!
//! A cold [`Problem::solve`] spends `Θ(n·k)` distance evaluations in the
//! certain k-center stage and the assignment sweep even when the instance
//! barely changed. This module exploits two recurring delta shapes:
//!
//! * **Append chains** ([`Solution::warm_start`]): a prior solution of a
//!   prefix of the instance seeds the new solve. The prior centers and
//!   the prefix assignment are reused verbatim; only the appended rows go
//!   through the fused `nearest_each` sweep, and center selection is
//!   re-run only when the *separation certificate* is violated — the
//!   reused centers stay a factor-2 approximation on the representatives
//!   (the same class of guarantee Gonzalez gives a cold solve) exactly as
//!   long as the warm radius does not exceed the minimum pairwise center
//!   distance `δ`. Every structural mismatch falls back to the cold
//!   pipeline with a typed [`WarmStats::fallback`] reason — never an
//!   error.
//! * **Leave-one-out sweeps** ([`solve_loo`]): all `n` one-point-removed
//!   variants share a single [`PointStore`] and one base solution.
//!   Removing a point that Gonzalez never chose as a center leaves the
//!   greedy trajectory — and therefore the centers, the per-row
//!   assignment, and every surviving distance — bit-identical, so those
//!   variants reduce to a float-only expected-cost recombination with
//!   **zero** new distance evaluations. Only the ≤ `k` center-removing
//!   variants re-solve, and they still share the store via a row mask
//!   ([`ukc_metric::mask_row`]) instead of copying coordinates.
//!
//! Both paths honor the workspace determinism contract: results are
//! bit-identical for every thread/lane count and agree exactly with what
//! the cold reference pipeline produces on the same inputs, because every
//! per-pair distance is a pure function of the two coordinate rows
//! (independent of store position) and all reductions are order-free.
//!
//! ```
//! use ukc_core::{Problem, Solution, SolverConfig};
//! use ukc_uncertain::generators::{clustered, ProbModel};
//!
//! let config = SolverConfig::default();
//! let base_set = clustered(7, 40, 4, 2, 3, 8.0, 0.5, ProbModel::Random);
//! let prior = Problem::euclidean(base_set.clone(), 4)
//!     .unwrap()
//!     .solve(&config)
//!     .unwrap();
//!
//! // Append a few points and warm-start from the prior.
//! let mut points = base_set.points().to_vec();
//! points.extend_from_slice(&clustered(8, 4, 4, 2, 3, 8.0, 0.5, ProbModel::Random).points());
//! let grown = Problem::euclidean_points(points, 4).unwrap();
//! let warm = Solution::warm_start(&grown, &config, &prior).unwrap();
//! let stats = warm.report.warm.as_ref().unwrap();
//! assert!(stats.fallback.is_none() || stats.reused_centers == 0);
//! ```

use std::time::Instant;

use crate::assignments::AssignmentRule;
use crate::config::{CertainStrategy, SolverConfig};
use crate::error::SolveError;
use crate::problem::{method_string, solve_batch_threads, validate_k, Problem, Solution};
use crate::report::{Report, WarmStats};
use ukc_kcenter::gonzalez;
use ukc_metric::{
    mask_row, DistCounter, DistanceOracle, Kernel, Metric, Point, PointId, PointStore, StoreOracle,
};
use ukc_pool::Exec;
use ukc_uncertain::{
    ecost_assigned, ecost_assigned_exec, expected_max, expected_point, UncertainPoint, UncertainSet,
};

/// The warm fast path supports exactly the pipeline whose structure it
/// reuses: expected-point assignment over Gonzalez centers in a
/// coordinate-backed Euclidean space.
fn warm_supported(problem: &Problem<Point>, config: &SolverConfig) -> Option<&'static str> {
    if config.rule() != AssignmentRule::ExpectedPoint
        || config.strategy() != CertainStrategy::Gonzalez
        || config.assignment() != crate::config::AssignmentMode::Plain
    {
        return Some("config_unsupported");
    }
    if problem.space_name() != "euclidean" {
        return Some("space_unsupported");
    }
    None
}

/// Pushes every realization location of `set` into a fresh store and
/// mirrors the set into id space, or `None` when the coordinates are
/// unusable (zero/mixed dimensions, non-finite values) — mirroring the
/// probe of the cold store path.
fn build_id_set(
    set: &UncertainSet<Point>,
    dim: usize,
    extra_rows: usize,
) -> Option<(PointStore, UncertainSet<PointId>)> {
    if dim == 0 {
        return None;
    }
    let mut store = PointStore::with_capacity(dim, set.total_locations() + extra_rows);
    let mut id_points: Vec<UncertainPoint<PointId>> = Vec::with_capacity(set.n());
    for up in set.iter() {
        let mut ids = Vec::with_capacity(up.z());
        for loc in up.locations() {
            ids.push(store.try_push(loc.coords()).ok()?);
        }
        let mut next = ids.into_iter();
        id_points.push(up.map_locations(|_| next.next().expect("one id per location")));
    }
    Some((store, UncertainSet::new(id_points)))
}

impl Solution<Point> {
    /// Solves `problem` warm-started from `prior`, a solution of a
    /// *prefix* of the same instance (typically: the instance before an
    /// append).
    ///
    /// The warm fast path reuses the prior centers and the prior
    /// assignment verbatim, re-assigns only the appended rows via one
    /// fused `nearest_each` sweep, and recomputes the exact expected cost
    /// — skipping the `Θ(n·k)` certain-solve stage entirely. It is taken
    /// only when the *separation certificate* holds: with `δ` the minimum
    /// pairwise distance among the prior centers and `r` the covering
    /// radius of the representatives by those centers, `r ≤ δ` makes the
    /// centers plus the farthest representative `k+1` representatives at
    /// pairwise distance `≥ r`, so the optimal certain radius is `≥ r/2`
    /// and the reused centers stay a factor-2 approximation — the same
    /// guarantee class a cold Gonzalez solve certifies.
    ///
    /// On any structural mismatch (unsupported config or space, different
    /// `k`, perturbed prefix, certificate violation, …) the call runs the
    /// ordinary cold pipeline and stamps the typed reason into
    /// [`WarmStats::fallback`] — a mismatched prior is **never** an
    /// error, so callers can chain speculative warm starts freely. The
    /// returned report always carries `Some(WarmStats)`, distinguishing
    /// warm solves (and their fallbacks) from plain cold solves.
    ///
    /// `prior` must be a solution this library produced for a prefix
    /// instance under an expected-point rule (its representative list is
    /// revalidated bitwise against the recomputed prefix; its
    /// `certain_radius` is trusted as every [`Solution`] invariant is).
    pub fn warm_start(
        problem: &Problem<Point>,
        config: &SolverConfig,
        prior: &Solution<Point>,
    ) -> Result<Solution<Point>, SolveError> {
        match warm_attempt(problem, config, prior) {
            Ok(solution) => Ok(solution),
            Err(reason) => {
                let mut solution = problem.solve(config)?;
                solution.report.warm = Some(WarmStats {
                    reused_centers: 0,
                    evals_saved: 0,
                    stages_skipped: Vec::new(),
                    fallback: Some(reason),
                });
                Ok(solution)
            }
        }
    }
}

/// The warm fast path; any `Err` is a typed fallback reason, upon which
/// the caller runs the cold pipeline.
fn warm_attempt(
    problem: &Problem<Point>,
    config: &SolverConfig,
    prior: &Solution<Point>,
) -> Result<Solution<Point>, &'static str> {
    if let Some(reason) = warm_supported(problem, config) {
        return Err(reason);
    }
    let set = problem.set();
    let n = set.n();
    let k = problem.k();
    if prior.centers.len() != k {
        return Err("k_mismatch");
    }
    let n_prior = prior.assignment.len();
    if n_prior == 0
        || n_prior > n
        || prior.representatives.len() != n_prior
        || prior.assignment.iter().any(|&a| a >= k)
    {
        return Err("prior_shape");
    }

    let t_total = Instant::now();
    let mut report = Report {
        method: method_string("euclidean", config.rule(), config.strategy()),
        ..Report::default()
    };

    // Stage 1: representatives — recomputed in full (coordinate
    // arithmetic, zero metric evaluations) and revalidated bitwise
    // against the prior's prefix. A perturbed instance — not an append —
    // shows up here and falls back cold.
    let t = Instant::now();
    let reps: Vec<Point> = set.iter().map(expected_point).collect();
    for (rep, prior_rep) in reps.iter().zip(&prior.representatives) {
        if rep.coords() != prior_rep.coords() {
            return Err("prefix_mismatch");
        }
    }
    // The separation certificate needs the prior centers to *be*
    // representatives of the current instance (true of every Gonzalez
    // solution over a matching prefix).
    if prior
        .centers
        .iter()
        .any(|c| !reps.iter().any(|r| r.coords() == c.coords()))
    {
        return Err("centers_not_representatives");
    }

    let (mut store, set_ids) =
        build_id_set(set, reps[0].dim(), n + k).ok_or("store_unavailable")?;
    let mut rep_ids = Vec::with_capacity(n);
    for rep in &reps {
        rep_ids.push(
            store
                .try_push(rep.coords())
                .map_err(|_| "store_unavailable")?,
        );
    }
    let mut center_ids = Vec::with_capacity(k);
    for c in &prior.centers {
        center_ids.push(
            store
                .try_push(c.coords())
                .map_err(|_| "store_unavailable")?,
        );
    }
    report.timings.representatives = t.elapsed();

    let counter = DistCounter::new();
    let exec = Exec::auto(config.resolved_threads());
    let oracle = StoreOracle::new(&store, config.kernel())
        .with_counter(&counter)
        .with_exec(exec);

    // Stage 2, shrunk from Θ(n·k) to k(k−1)/2: the separation
    // certificate δ = min pairwise center distance.
    let t = Instant::now();
    let mut delta = f64::INFINITY;
    for i in 0..k {
        for j in (i + 1)..k {
            delta = delta.min(oracle.dist(&center_ids[i], &center_ids[j]));
        }
    }
    report.distance_evals.certain_solve = counter.count();
    report.timings.certain_solve = t.elapsed();

    // Stage 3, shrunk to the appended rows: one fused nearest-center
    // sweep; the prefix assignment is carried over verbatim (valid
    // because the prefix representatives are bitwise unchanged).
    let evals_before = counter.count();
    let t = Instant::now();
    let mut nearest = vec![(0usize, 0.0f64); n - n_prior];
    oracle.nearest_each(&rep_ids[n_prior..], &center_ids, &mut nearest);
    let mut r_warm = prior.certain_radius;
    for &(_, d) in &nearest {
        r_warm = r_warm.max(d);
    }
    // Negated form on purpose: a NaN radius must fail the certificate,
    // not sail through a `>` comparison.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(r_warm <= delta) {
        // Certificate violated: an appended representative drifted too
        // far from every reused center for the factor-2 argument to
        // hold. Re-run center selection from scratch.
        return Err("radius_bound_exceeded");
    }
    let mut assignment = prior.assignment.clone();
    assignment.extend(nearest.iter().map(|&(c, _)| c));
    report.distance_evals.assignment = counter.since(evals_before);
    report.timings.assignment = t.elapsed();

    // Stage 4: the exact expected cost is never reused — it is what the
    // caller is paying for.
    let evals_before = counter.count();
    let t = Instant::now();
    let ecost = ecost_assigned_exec(&set_ids, &center_ids, &assignment, &oracle, exec);
    report.distance_evals.cost = counter.since(evals_before);
    report.timings.cost = t.elapsed();

    if config.computes_lower_bound() {
        let evals_before = counter.count();
        let t = Instant::now();
        report.lower_bound = Some(crate::bounds::lower_bound_euclidean(set, k));
        report.timings.lower_bound = t.elapsed();
        report.distance_evals.lower_bound = counter.since(evals_before);
    }

    // What a cold EP/Gonzalez solve of this instance spends: n·k for the
    // greedy sweep, n·k for its radius, n·k for assignment, plus one
    // evaluation per realization location for the cost stage.
    let cold_estimate = 3 * (n as u64) * (k as u64) + set.total_locations() as u64;
    report.warm = Some(WarmStats {
        reused_centers: k,
        evals_saved: cold_estimate.saturating_sub(counter.count()),
        stages_skipped: vec!["certain_solve", "assignment_prefix"],
        fallback: None,
    });
    report.timings.total = t_total.elapsed();

    Ok(Solution {
        centers: prior.centers.clone(),
        assignment,
        ecost,
        representatives: reps,
        certain_radius: r_warm,
        report,
    })
}

/// One leave-one-out variant of a [`solve_loo`] sweep: the solve of the
/// instance with point `removed` masked out.
#[derive(Clone, Debug)]
pub struct LooVariant {
    /// Index of the removed uncertain point in the base instance.
    pub removed: usize,
    /// Exact expected cost of the variant's solution.
    pub ecost: f64,
    /// Certain k-center radius of the variant's solution.
    pub certain_radius: f64,
    /// `true` when the variant reused the base centers and assignment
    /// (bit-exact with an independent cold solve of the reduced
    /// instance, at zero additional distance evaluations); `false` when
    /// it was re-solved.
    pub reused: bool,
    /// Distance evaluations this variant spent on top of the shared
    /// sweeps (`0` for reused variants).
    pub distance_evals: u64,
}

/// The result of a batch leave-one-out sweep ([`solve_loo`]).
#[derive(Clone, Debug)]
pub struct LooReport {
    /// The solution of the full instance all variants share.
    pub base: Solution<Point>,
    /// One entry per removed point, in point order.
    pub variants: Vec<LooVariant>,
    /// Variants that reused the base solution outright.
    pub reused_variants: usize,
    /// Variants that required a re-solve.
    pub resolved_variants: usize,
    /// Total distance evaluations: base solve + shared sweeps + every
    /// re-solved variant.
    pub distance_evals: u64,
}

/// Solves all `n` leave-one-out variants of `problem` — the jackknife
/// sweep of conformal-prediction and stability analyses — sharing one
/// [`PointStore`] and one base solution instead of `n` independent cold
/// solves.
///
/// Under the expected-point/Gonzalez pipeline on a Euclidean instance,
/// removing a point the greedy never picked as a center leaves the
/// Gonzalez trajectory — and with it the centers, every surviving row's
/// assignment, and every surviving distance — identical, because the
/// greedy's last-max tie-break can only ever have chosen the removed
/// point if it *was* a center. Those `n − |centers|` variants therefore
/// recombine to bit-exact solutions of the reduced instances from the
/// shared min-distance and cost-variable sweeps, with zero additional
/// distance evaluations; only the ≤ k center-removing variants re-solve,
/// still on the shared store through a row mask. Variants fan out across
/// the global worker pool deterministically (each variant is an
/// independent pure computation, so lane count cannot leak into
/// results).
///
/// Any other configuration or space falls back to `n` independent
/// reduced solves through [`solve_batch_threads`] (correct, just not
/// shared). Instances too small to lose a point (`k > n − 1`) are a
/// typed error.
pub fn solve_loo(problem: &Problem<Point>, config: &SolverConfig) -> Result<LooReport, SolveError> {
    let n = problem.set().n();
    validate_k(n.saturating_sub(1), problem.k())?;
    let base = problem.solve(config)?;
    if warm_supported(problem, config).is_none() {
        if let Some(report) = solve_loo_store(problem, config, &base) {
            return Ok(report);
        }
    }
    solve_loo_general(problem, config, base)
}

/// The shared-store fast path of [`solve_loo`]; `None` when the
/// coordinates cannot back a store or the base solution does not have
/// the Gonzalez shape (centers drawn from the representatives).
fn solve_loo_store(
    problem: &Problem<Point>,
    config: &SolverConfig,
    base: &Solution<Point>,
) -> Option<LooReport> {
    let set = problem.set();
    let n = set.n();
    let k = problem.k();
    let reps = &base.representatives;
    if reps.len() != n || base.assignment.len() != n {
        return None;
    }

    let (mut store, set_ids) = build_id_set(set, reps[0].dim(), n)?;
    let mut rep_ids = Vec::with_capacity(n);
    for rep in reps {
        rep_ids.push(store.try_push(rep.coords()).ok()?);
    }

    // Rows that could have been chosen as centers. Coordinate-duplicate
    // rows are conservatively included: re-solving one costs a little,
    // while wrongly reusing one could change the greedy trajectory.
    let mut is_center = vec![false; n];
    let mut center_ids = Vec::with_capacity(base.centers.len());
    for c in &base.centers {
        let mut first = None;
        for (j, rep) in reps.iter().enumerate() {
            if rep.coords() == c.coords() {
                is_center[j] = true;
                first.get_or_insert(rep_ids[j]);
            }
        }
        center_ids.push(first?);
    }

    let shared_counter = DistCounter::new();
    let exec = Exec::auto(config.resolved_threads());
    let oracle = StoreOracle::new(&store, config.kernel())
        .with_counter(&shared_counter)
        .with_exec(exec);

    // Shared sweep 1 (n·k evals): every representative's distance to its
    // nearest base center, feeding each variant's radius via running
    // prefix/suffix maxima.
    let mut mindist = vec![f64::INFINITY; n];
    oracle.dists_to_centers_min(&rep_ids, &center_ids, &mut mindist);
    let mut prefix_max = vec![0.0f64; n + 1];
    for i in 0..n {
        prefix_max[i + 1] = prefix_max[i].max(mindist[i]);
    }
    let mut suffix_max = vec![0.0f64; n + 1];
    for i in (0..n).rev() {
        suffix_max[i] = suffix_max[i + 1].max(mindist[i]);
    }

    // Shared sweep 2 (one eval per realization location): the cost
    // variables of the base assignment. A reused variant's exact
    // expected cost is then a float-only recombination.
    let mut vars: Vec<Vec<(f64, f64)>> = Vec::with_capacity(n);
    let mut dists = Vec::new();
    for (j, up) in set_ids.iter().enumerate() {
        let center = center_ids[base.assignment[j]];
        dists.resize(up.z(), 0.0);
        oracle.dists_to_one(up.locations(), &center, &mut dists[..up.z()]);
        vars.push(
            dists[..up.z()]
                .iter()
                .copied()
                .zip(up.probs().iter().copied())
                .collect(),
        );
    }

    // Fan the variants across the pool, one per lane chunk. Each slot is
    // an independent pure computation over shared read-only state, so
    // results are bit-identical for every lane count.
    let kernel = config.kernel();
    let mut slots: Vec<Option<LooVariant>> = Vec::new();
    slots.resize_with(n, || None);
    let threads = config.resolved_threads().max(1).min(n);
    ukc_pool::for_each_slice(
        Exec::pooled(ukc_pool::global(), threads),
        &mut slots,
        1,
        |i, slot| {
            slot[0] = Some(if is_center[i] {
                resolve_center_variant(&store, kernel, &set_ids, &rep_ids, k, i)
            } else {
                let mut reduced: Vec<Vec<(f64, f64)>> = Vec::with_capacity(n - 1);
                reduced.extend_from_slice(&vars[..i]);
                reduced.extend_from_slice(&vars[i + 1..]);
                LooVariant {
                    removed: i,
                    ecost: expected_max(&reduced),
                    certain_radius: prefix_max[i].max(suffix_max[i + 1]),
                    reused: true,
                    distance_evals: 0,
                }
            });
        },
    );

    let variants: Vec<LooVariant> = slots
        .into_iter()
        .map(|s| s.expect("the pool executes every chunk exactly once"))
        .collect();
    let reused_variants = variants.iter().filter(|v| v.reused).count();
    let distance_evals = base.report.distance_evals.total()
        + shared_counter.count()
        + variants.iter().map(|v| v.distance_evals).sum::<u64>();
    Some(LooReport {
        base: base.clone(),
        reused_variants,
        resolved_variants: n - reused_variants,
        distance_evals,
        variants,
    })
}

/// Re-solves the variant that removes row `i` (a center row, or a
/// coordinate duplicate of one) on the shared store: mask the row out of
/// the representative slice, run the greedy, re-assign, recombine the
/// exact cost.
fn resolve_center_variant(
    store: &PointStore,
    kernel: Kernel,
    set_ids: &UncertainSet<PointId>,
    rep_ids: &[PointId],
    k: usize,
    i: usize,
) -> LooVariant {
    let counter = DistCounter::new();
    let oracle = StoreOracle::new(store, kernel).with_counter(&counter);
    let reduced_reps = mask_row(rep_ids, i);
    let certain = gonzalez(&reduced_reps, k, &oracle, 0);
    let mut nearest = vec![(0usize, 0.0f64); reduced_reps.len()];
    oracle.nearest_each(&reduced_reps, &certain.centers, &mut nearest);
    let assignment: Vec<usize> = nearest.into_iter().map(|(c, _)| c).collect();
    let reduced_points: Vec<UncertainPoint<PointId>> = set_ids
        .iter()
        .enumerate()
        .filter(|&(j, _)| j != i)
        .map(|(_, up)| up.clone())
        .collect();
    let reduced_set = UncertainSet::new(reduced_points);
    let ecost = ecost_assigned(&reduced_set, &certain.centers, &assignment, &oracle);
    LooVariant {
        removed: i,
        ecost,
        certain_radius: certain.radius,
        reused: false,
        distance_evals: counter.count(),
    }
}

/// The fallback path of [`solve_loo`]: `n` independent reduced solves
/// through the batch fan-out — correct for every space and
/// configuration, with no sharing.
fn solve_loo_general(
    problem: &Problem<Point>,
    config: &SolverConfig,
    base: Solution<Point>,
) -> Result<LooReport, SolveError> {
    let set = problem.set();
    let n = set.n();
    let mut variant_problems = Vec::with_capacity(n);
    for i in 0..n {
        let points: Vec<UncertainPoint<Point>> = set
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, up)| up.clone())
            .collect();
        variant_problems.push(problem.with_set(UncertainSet::new(points))?);
    }
    let results = solve_batch_threads(&variant_problems, config, config.resolved_threads());
    let mut variants = Vec::with_capacity(n);
    let mut distance_evals = base.report.distance_evals.total();
    for (i, result) in results.into_iter().enumerate() {
        let solution = result?;
        let evals = solution.report.distance_evals.total();
        distance_evals += evals;
        variants.push(LooVariant {
            removed: i,
            ecost: solution.ecost,
            certain_radius: solution.certain_radius,
            reused: false,
            distance_evals: evals,
        });
    }
    Ok(LooReport {
        base,
        variants,
        reused_variants: 0,
        resolved_variants: n,
        distance_evals,
    })
}
