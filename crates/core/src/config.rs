//! Solver configuration: the (rule × certain-solver × ε × seed ×
//! candidate-policy) combination as a first-class, validated value.
//!
//! A [`SolverConfig`] is immutable once built, cheap to clone, and shared
//! freely across threads ([`crate::solve_batch`] takes one config for the
//! whole batch). Build one with the fluent [`SolverConfig::builder`], or
//! start from a paper-faithful preset ([`SolverConfig::table1_row`]) and
//! tweak it:
//!
//! ```
//! use ukc_core::{AssignmentRule, CertainStrategy, SolverConfig};
//!
//! let cfg = SolverConfig::builder()
//!     .rule(AssignmentRule::ExpectedPoint)
//!     .strategy(CertainStrategy::Grid)
//!     .eps(0.25)
//!     .seed(7)
//!     .build()
//!     .unwrap();
//! assert_eq!(cfg.rule(), AssignmentRule::ExpectedPoint);
//!
//! // Table 1 row 4: EP rule + Gonzalez backend, proven factor 4.
//! let row4 = SolverConfig::table1_row(4).unwrap();
//! assert_eq!(row4.rule(), AssignmentRule::ExpectedPoint);
//! ```

use crate::assignments::AssignmentRule;
use crate::error::SolveError;
use ukc_kcenter::{ExactOptions, GridOptions};
use ukc_metric::Kernel;

/// Which deterministic k-center backend runs on the representatives.
///
/// The strategy determines the certain factor `1 + ε` and therefore the
/// proven end-to-end factor (see [`SolverConfig::table1_row`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CertainStrategy {
    /// Gonzalez greedy: factor 2, `O(nk)` — the paper's Remark 3.1 choice.
    Gonzalez,
    /// Gonzalez followed by best-improvement single swaps (factor still
    /// 2, usually much better in practice).
    GonzalezLocalSearch {
        /// Maximum swap rounds.
        rounds: usize,
    },
    /// Certified `(1+ε)` grid solver — Euclidean problems only; falls
    /// back to Gonzalez past its candidate caps. ε comes from
    /// [`SolverConfigBuilder::eps`].
    Grid,
    /// Exact discrete k-center over the candidate pool (see
    /// [`CandidatePolicy`]); falls back to Gonzalez past its limits.
    ExactDiscrete,
}

impl CertainStrategy {
    /// Short name for reports and error messages.
    pub fn name(&self) -> &'static str {
        match self {
            CertainStrategy::Gonzalez => "gonzalez",
            CertainStrategy::GonzalezLocalSearch { .. } => "gonzalez+local-search",
            CertainStrategy::Grid => "grid",
            CertainStrategy::ExactDiscrete => "exact-discrete",
        }
    }
}

/// How representatives are matched to certain centers in the assignment
/// and cost stages.
///
/// [`AssignmentMode::AdditivelyWeighted`] is the Apollonius variant: every
/// center `cᵢ` carries an additive weight `wᵢ` (the expected spread
/// `E d(Pᵢ, repᵢ)` of the uncertain point it was chosen from) and points
/// compare centers by `d(p, cᵢ) − wᵢ`, so a center standing in for a
/// widely-spread uncertain point claims a larger cell. With all-zero
/// weights (an all-certain instance) the weighted pipeline is
/// bit-identical to [`AssignmentMode::Plain`], which the
/// weighted-equivalence suite pins for every kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AssignmentMode {
    /// Unweighted nearest-center assignment — the paper's pipeline.
    #[default]
    Plain,
    /// Additively-weighted (Apollonius) assignment: centers compare by
    /// `d(p, c) − w_c` with `w_c` the source point's expected spread.
    AdditivelyWeighted,
}

impl AssignmentMode {
    /// Every mode, in wire order — for per-mode metric slots and
    /// exhaustive test sweeps.
    pub const ALL: [AssignmentMode; 2] =
        [AssignmentMode::Plain, AssignmentMode::AdditivelyWeighted];

    /// Short name for reports, wire payloads, and error messages.
    pub fn name(&self) -> &'static str {
        match self {
            AssignmentMode::Plain => "plain",
            AssignmentMode::AdditivelyWeighted => "weighted",
        }
    }

    /// Parses the wire/CLI spelling (`"plain"` or `"weighted"`).
    pub fn parse(s: &str) -> Option<AssignmentMode> {
        match s {
            "plain" => Some(AssignmentMode::Plain),
            "weighted" => Some(AssignmentMode::AdditivelyWeighted),
            _ => None,
        }
    }
}

/// Where discrete solvers draw their candidate centers from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CandidatePolicy {
    /// The problem's own pool: the explicit pool of a discrete problem,
    /// or the representative points of a Euclidean problem — the paper's
    /// default.
    #[default]
    ProblemPool,
    /// The union of every uncertain location in the instance (a richer
    /// pool: slower, never worse on the certain radius).
    LocationPool,
}

/// The validated solver configuration.
///
/// Construct via [`SolverConfig::builder`], [`SolverConfig::default`]
/// (EP rule + Gonzalez — the paper's best general-purpose Euclidean
/// pipeline) or a [`SolverConfig::table1_row`] preset.
#[derive(Clone, Debug, PartialEq)]
pub struct SolverConfig {
    rule: AssignmentRule,
    strategy: CertainStrategy,
    assignment: AssignmentMode,
    eps: f64,
    seed: u64,
    candidate_policy: CandidatePolicy,
    lower_bound: bool,
    kernel: Kernel,
    threads: usize,
    grid_limits: GridOptions,
    exact_limits: ExactOptions,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            rule: AssignmentRule::ExpectedPoint,
            strategy: CertainStrategy::Gonzalez,
            assignment: AssignmentMode::Plain,
            eps: GridOptions::default().eps,
            seed: 0,
            candidate_policy: CandidatePolicy::ProblemPool,
            lower_bound: true,
            kernel: Kernel::default(),
            threads: 0,
            grid_limits: GridOptions::default(),
            exact_limits: ExactOptions::default(),
        }
    }
}

impl SolverConfig {
    /// Starts a fluent builder from the default configuration.
    pub fn builder() -> SolverConfigBuilder {
        SolverConfigBuilder {
            config: SolverConfig::default(),
            explicit_eps: None,
        }
    }

    /// A paper-faithful preset for a row of the paper's Table 1.
    ///
    /// | row | preset | proven factor |
    /// |---|---|---|
    /// | 1 | EP + Gonzalez (Theorem 2.1 is the `k = 1` case: `P̄` itself) | 2 |
    /// | 2 | ED + Gonzalez (Theorem 2.2 + Remark 3.1) | 6 |
    /// | 3 | ED + grid, ε = 0.25 (Theorem 2.2) | 5 + ε |
    /// | 4 | EP + Gonzalez (Theorem 2.2 + Remark 3.1) | 4 |
    /// | 5 | EP + grid, ε = 0.25 (Theorem 2.2) | 3 + ε |
    /// | 6 | EP + Gonzalez (Theorem 2.5, ε = 1) | 4 |
    /// | 7 | EP + grid, ε = 0.25 (Theorem 2.5) | 3 + ε |
    /// | 8 | ED + Gonzalez (generic-pipeline counterpart of the exact 1-D solver in `ukc-onedim`) | 3 via Theorem 2.3 |
    /// | 9 | OC + Gonzalez (Theorem 2.7) | 5 + 2ε |
    ///
    /// Rows outside `1..=9` return [`SolveError::UnknownTableRow`].
    pub fn table1_row(row: usize) -> Result<SolverConfig, SolveError> {
        let builder = SolverConfig::builder();
        match row {
            1 | 4 | 6 => builder.rule(AssignmentRule::ExpectedPoint).build(),
            2 | 8 => builder.rule(AssignmentRule::ExpectedDistance).build(),
            3 => builder
                .rule(AssignmentRule::ExpectedDistance)
                .strategy(CertainStrategy::Grid)
                .eps(0.25)
                .build(),
            5 | 7 => builder
                .rule(AssignmentRule::ExpectedPoint)
                .strategy(CertainStrategy::Grid)
                .eps(0.25)
                .build(),
            9 => builder.rule(AssignmentRule::OneCenter).build(),
            _ => Err(SolveError::UnknownTableRow { row }),
        }
    }

    /// The assignment rule.
    pub fn rule(&self) -> AssignmentRule {
        self.rule
    }

    /// The certain-solver strategy.
    pub fn strategy(&self) -> CertainStrategy {
        self.strategy
    }

    /// The assignment mode ([`AssignmentMode::Plain`] by default).
    pub fn assignment(&self) -> AssignmentMode {
        self.assignment
    }

    /// The grid solver's ε.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The seed reserved for randomized strategies (recorded for
    /// reproducibility; every current strategy is deterministic).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The candidate-pool policy for discrete solvers.
    pub fn candidate_policy(&self) -> CandidatePolicy {
        self.candidate_policy
    }

    /// Whether each solve certifies a lower bound in its report.
    pub fn computes_lower_bound(&self) -> bool {
        self.lower_bound
    }

    /// The distance kernel evaluating batched sweeps
    /// ([`Kernel::Blocked`] by default; [`Kernel::Scalar`] reproduces the
    /// pointwise summation order bit-for-bit).
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// The requested intra-solve lane count: `0` (the default) means
    /// "auto" — `UKC_THREADS` when set, otherwise the machine's available
    /// parallelism. See [`SolverConfig::resolved_threads`].
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The lane count a solve will actually request from the shared pool:
    /// the explicit [`SolverConfigBuilder::threads`] value, or
    /// [`ukc_pool::default_threads`] when set to auto.
    ///
    /// Threads are a pure *resource* knob: solver output, per-stage
    /// distance-eval counts, and instance digests are bit-identical for
    /// every value (pinned by `tests/parallel_equivalence.rs`), which is
    /// also why the serving layer's cache key deliberately excludes it.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            ukc_pool::default_threads()
        } else {
            self.threads
        }
    }

    /// Returns this configuration with the distance kernel replaced.
    ///
    /// The serving layer uses this to apply a server-wide default kernel
    /// to requests that did not pick one explicitly; every other field is
    /// preserved, and no re-validation is needed (the kernel choice never
    /// affects validity).
    #[must_use]
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// The grid solver's options (ε folded in).
    pub fn grid_options(&self) -> GridOptions {
        GridOptions {
            eps: self.eps,
            kernel: self.kernel,
            ..self.grid_limits
        }
    }

    /// The exact discrete solver's resource limits.
    pub fn exact_options(&self) -> ExactOptions {
        self.exact_limits
    }
}

/// Fluent builder for [`SolverConfig`]; finish with
/// [`SolverConfigBuilder::build`], which validates.
#[derive(Clone, Debug)]
pub struct SolverConfigBuilder {
    config: SolverConfig,
    /// ε set via [`SolverConfigBuilder::eps`]; wins over the ε inside
    /// [`SolverConfigBuilder::grid_limits`] regardless of call order.
    explicit_eps: Option<f64>,
}

impl SolverConfigBuilder {
    /// Sets the assignment rule.
    pub fn rule(mut self, rule: AssignmentRule) -> Self {
        self.config.rule = rule;
        self
    }

    /// Sets the certain-solver strategy.
    pub fn strategy(mut self, strategy: CertainStrategy) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// Sets the assignment mode. [`AssignmentMode::AdditivelyWeighted`]
    /// requires the Gonzalez strategy on a Euclidean coordinate instance
    /// (validated at solve time, where the problem's space is known).
    pub fn assignment(mut self, assignment: AssignmentMode) -> Self {
        self.config.assignment = assignment;
        self
    }

    /// Sets the grid solver's ε (validated at [`Self::build`]). Takes
    /// precedence over the ε carried by [`Self::grid_limits`], in either
    /// call order.
    pub fn eps(mut self, eps: f64) -> Self {
        self.explicit_eps = Some(eps);
        self.config.eps = eps;
        self
    }

    /// Sets the seed recorded for randomized strategies.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the candidate-pool policy.
    pub fn candidate_policy(mut self, policy: CandidatePolicy) -> Self {
        self.config.candidate_policy = policy;
        self
    }

    /// Enables or disables lower-bound certification per solve
    /// (on by default; disable on hot paths that only need the solution).
    pub fn lower_bound(mut self, enabled: bool) -> Self {
        self.config.lower_bound = enabled;
        self
    }

    /// Picks the distance kernel. [`Kernel::Blocked`] (the default) wins
    /// at moderate-to-high dimension (see `BENCH_kernel.json`; at `d ≤ 2`
    /// the two are within a few percent of each other);
    /// [`Kernel::Tiled`] adds the register-tiled mini-GEMM sweeps, the
    /// fastest option on large fused assignment/cost workloads (it
    /// auto-falls back to scalar below the dispatch cutoffs, so it is
    /// safe to select unconditionally);
    /// [`Kernel::Scalar`] preserves the historical per-pair f64 summation
    /// order exactly, which the golden-equivalence suite pins.
    /// All kernels evaluate — and count — identical distance pairs.
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.config.kernel = kernel;
        self
    }

    /// Caps the number of pool lanes a single solve may use. `0` (the
    /// default) resolves to `UKC_THREADS` / available parallelism; `1`
    /// runs fully inline — today's sequential path, byte for byte. Any
    /// value yields bit-identical output (the execution layer's
    /// determinism contract); the knob only trades latency for pool
    /// capacity.
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Overrides the grid solver's candidate caps. The ε inside `limits`
    /// applies only when [`Self::eps`] was not called; an explicit
    /// `.eps(...)` always wins.
    pub fn grid_limits(mut self, limits: GridOptions) -> Self {
        self.config.eps = self.explicit_eps.unwrap_or(limits.eps);
        self.config.grid_limits = limits;
        self
    }

    /// Overrides the exact discrete solver's resource limits.
    pub fn exact_limits(mut self, limits: ExactOptions) -> Self {
        self.config.exact_limits = limits;
        self
    }

    /// Skips validation — only for the deprecated legacy wrappers, which
    /// forwarded caller options untouched.
    pub(crate) fn build_unchecked(self) -> SolverConfig {
        self.config
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<SolverConfig, SolveError> {
        let eps = self.config.eps;
        if !(eps.is_finite() && eps > 0.0) {
            return Err(SolveError::BadEpsilon { eps });
        }
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrips_fields() {
        let cfg = SolverConfig::builder()
            .rule(AssignmentRule::OneCenter)
            .strategy(CertainStrategy::GonzalezLocalSearch { rounds: 9 })
            .eps(0.125)
            .seed(42)
            .candidate_policy(CandidatePolicy::LocationPool)
            .lower_bound(false)
            .build()
            .unwrap();
        assert_eq!(cfg.rule(), AssignmentRule::OneCenter);
        assert_eq!(
            cfg.strategy(),
            CertainStrategy::GonzalezLocalSearch { rounds: 9 }
        );
        assert_eq!(cfg.eps(), 0.125);
        assert_eq!(cfg.seed(), 42);
        assert_eq!(cfg.candidate_policy(), CandidatePolicy::LocationPool);
        assert!(!cfg.computes_lower_bound());
        assert_eq!(cfg.grid_options().eps, 0.125);
    }

    #[test]
    fn assignment_mode_roundtrips_and_parses() {
        assert_eq!(SolverConfig::default().assignment(), AssignmentMode::Plain);
        let cfg = SolverConfig::builder()
            .assignment(AssignmentMode::AdditivelyWeighted)
            .build()
            .unwrap();
        assert_eq!(cfg.assignment(), AssignmentMode::AdditivelyWeighted);
        for mode in [AssignmentMode::Plain, AssignmentMode::AdditivelyWeighted] {
            assert_eq!(AssignmentMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(AssignmentMode::parse("apollonius"), None);
    }

    #[test]
    fn threads_knob_roundtrips_and_resolves() {
        let cfg = SolverConfig::builder().threads(3).build().unwrap();
        assert_eq!(cfg.threads(), 3);
        assert_eq!(cfg.resolved_threads(), 3);
        let auto = SolverConfig::default();
        assert_eq!(auto.threads(), 0);
        assert!(auto.resolved_threads() >= 1);
        let sequential = SolverConfig::builder().threads(1).build().unwrap();
        assert_eq!(sequential.resolved_threads(), 1);
    }

    #[test]
    fn bad_epsilon_rejected() {
        for eps in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(
                    SolverConfig::builder().eps(eps).build(),
                    Err(SolveError::BadEpsilon { .. })
                ),
                "eps = {eps}"
            );
        }
    }

    #[test]
    fn table1_presets() {
        for row in 1..=9usize {
            let cfg = SolverConfig::table1_row(row).unwrap();
            match row {
                2 | 3 | 8 => assert_eq!(cfg.rule(), AssignmentRule::ExpectedDistance),
                9 => assert_eq!(cfg.rule(), AssignmentRule::OneCenter),
                _ => assert_eq!(cfg.rule(), AssignmentRule::ExpectedPoint),
            }
            match row {
                3 | 5 | 7 => assert_eq!(cfg.strategy(), CertainStrategy::Grid),
                _ => assert_eq!(cfg.strategy(), CertainStrategy::Gonzalez),
            }
        }
        assert_eq!(
            SolverConfig::table1_row(0),
            Err(SolveError::UnknownTableRow { row: 0 })
        );
        // Explicit eps survives grid_limits in either call order.
        let explicit_then_limits = SolverConfig::builder()
            .eps(0.125)
            .grid_limits(ukc_kcenter::GridOptions::default())
            .build()
            .unwrap();
        assert_eq!(explicit_then_limits.eps(), 0.125);
        let limits_then_explicit = SolverConfig::builder()
            .grid_limits(ukc_kcenter::GridOptions::default())
            .eps(0.125)
            .build()
            .unwrap();
        assert_eq!(limits_then_explicit.eps(), 0.125);
        // Without an explicit eps, the limits' eps applies.
        let limits_only = SolverConfig::builder()
            .grid_limits(ukc_kcenter::GridOptions {
                eps: 0.75,
                ..Default::default()
            })
            .build()
            .unwrap();
        assert_eq!(limits_only.eps(), 0.75);
        assert_eq!(
            SolverConfig::table1_row(10),
            Err(SolveError::UnknownTableRow { row: 10 })
        );
    }
}
