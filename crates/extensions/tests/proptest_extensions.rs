//! Property tests for the future-work extensions: the k-median linearity
//! reduction, the k-means bias–variance identity, and the streaming
//! doubling invariants.

use proptest::prelude::*;
use ukc_extensions::kmeans::ecost_kmeans;
use ukc_extensions::{
    ecost_kmedian, uncertain_kmeans, uncertain_kmedian_exact, uncertain_kmedian_local_search,
    variance, StreamingKCenter,
};
use ukc_kcenter::{exact_discrete_kcenter, kcenter_cost, ExactOptions};
use ukc_metric::{Euclidean, Metric, Point};
use ukc_uncertain::{RealizationIter, UncertainPoint, UncertainSet};

fn uncertain_point() -> impl Strategy<Value = UncertainPoint<Point>> {
    prop::collection::vec(((-50.0f64..50.0, -50.0f64..50.0), 0.05f64..1.0), 1..=3).prop_map(
        |pairs| {
            let total: f64 = pairs.iter().map(|(_, w)| w).sum();
            let locs: Vec<Point> = pairs
                .iter()
                .map(|((x, y), _)| Point::new(vec![*x, *y]))
                .collect();
            let probs: Vec<f64> = pairs.iter().map(|(_, w)| w / total).collect();
            UncertainPoint::new(locs, probs).expect("normalized")
        },
    )
}

fn uncertain_set() -> impl Strategy<Value = UncertainSet<Point>> {
    prop::collection::vec(uncertain_point(), 2..=4).prop_map(UncertainSet::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// k-median linearity: the closed form equals Ω enumeration.
    #[test]
    fn kmedian_linearity(set in uncertain_set()) {
        let centers = vec![Point::new(vec![-10.0, 0.0]), Point::new(vec![10.0, 0.0])];
        let assignment: Vec<usize> = (0..set.n()).map(|i| i % 2).collect();
        let fast = ecost_kmedian(&set, &centers, &assignment, &Euclidean);
        let mut slow = 0.0;
        for (idx, prob) in RealizationIter::new(&set) {
            let mut sum = 0.0;
            for (i, &j) in idx.iter().enumerate() {
                sum += Euclidean.dist(&set[i].locations()[j], &centers[assignment[i]]);
            }
            slow += prob * sum;
        }
        prop_assert!((fast - slow).abs() < 1e-8);
    }

    /// k-means bias–variance identity vs Ω enumeration.
    #[test]
    fn kmeans_identity(set in uncertain_set()) {
        let centers = vec![Point::new(vec![-5.0, 5.0]), Point::new(vec![5.0, -5.0])];
        let assignment: Vec<usize> = (0..set.n()).map(|i| i % 2).collect();
        let fast = ecost_kmeans(&set, &centers, &assignment);
        let mut slow = 0.0;
        for (idx, prob) in RealizationIter::new(&set) {
            let mut sum = 0.0;
            for (i, &j) in idx.iter().enumerate() {
                let d = Euclidean.dist(&set[i].locations()[j], &centers[assignment[i]]);
                sum += d * d;
            }
            slow += prob * sum;
        }
        prop_assert!((fast - slow).abs() < 1e-6 * (1.0 + fast.abs()));
    }

    /// Variance is non-negative and zero iff the point is deterministic.
    #[test]
    fn variance_nonneg(up in uncertain_point()) {
        let v = variance(&up);
        prop_assert!(v >= -1e-12);
        if up.is_certain() {
            prop_assert!(v.abs() < 1e-12);
        }
    }

    /// Exact k-median never loses to local search.
    #[test]
    fn kmedian_exact_beats_local_search(set in uncertain_set()) {
        let pool = set.location_pool();
        let k = 2usize.min(pool.len());
        let exact = uncertain_kmedian_exact(&set, &pool, k, &Euclidean, 1_000_000).unwrap();
        let ls = uncertain_kmedian_local_search(&set, &pool, k, &Euclidean, 30);
        prop_assert!(exact.cost <= ls.cost + 1e-9);
    }

    /// k-means cost is bounded below by the variance floor and the floor
    /// is assignment-independent.
    #[test]
    fn kmeans_floor(set in uncertain_set(), seed in 0u64..100) {
        let sol = uncertain_kmeans(&set, 2, seed, 3, 50);
        prop_assert!(sol.cost >= sol.variance_floor - 1e-9);
        let floor: f64 = set.iter().map(variance).sum();
        prop_assert!((sol.variance_floor - floor).abs() < 1e-9);
    }

    /// Streaming doubling: at most k centers, every inserted point within
    /// the invariant bound, and within 8x of the offline optimum.
    #[test]
    fn streaming_invariants(coords in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 5..=30), k in 2usize..=4) {
        let pts: Vec<Point> = coords.iter().map(|(x, y)| Point::new(vec![*x, *y])).collect();
        let mut s = StreamingKCenter::new(k);
        for p in &pts {
            s.insert(p.clone(), &Euclidean);
        }
        prop_assert!(s.centers().len() <= k);
        let achieved = kcenter_cost(&pts, s.centers(), &Euclidean);
        if s.threshold() > 0.0 {
            prop_assert!(achieved <= s.radius_bound() + 1e-9);
        }
        let offline = exact_discrete_kcenter(&pts, &pts, k, &Euclidean, ExactOptions::default())
            .unwrap();
        prop_assert!(achieved <= 8.0 * offline.radius + 1e-9,
            "streaming {achieved} vs offline {}", offline.radius);
    }
}
