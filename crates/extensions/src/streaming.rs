//! Streaming k-center via the doubling algorithm, lifted to uncertain
//! points.
//!
//! The doubling algorithm (Charikar–Chekuri–Feder–Motwani) maintains at
//! most `k` centers over a one-pass stream with an 8-approximation
//! guarantee: it keeps a lower-bound threshold `τ` such that (a) all kept
//! centers are pairwise `> τ` apart (so `opt ≥ τ/2` by pigeonhole once
//! there are k+1 such points... maintained invariantly), and (b) every
//! seen point is within `4τ` of a kept center. On overflow it doubles `τ`
//! and merges centers closer than the new `τ`.
//!
//! [`StreamingUncertainKCenter`] feeds the O(z)-computable expected points
//! `P̄` through the summary, extending the paper's replace-by-
//! representative pipeline to streams (the setting of reference \[25\]):
//! the certain-solver factor `1+ε` in Theorems 2.2/2.5 simply becomes the
//! streaming factor 8.

use ukc_metric::{DistanceOracle, Point};
use ukc_uncertain::{expected_point, UncertainPoint};

/// One-pass k-center summary with the doubling invariant.
#[derive(Clone, Debug)]
pub struct StreamingKCenter<P> {
    k: usize,
    /// Current merge threshold τ (0 until the first overflow).
    threshold: f64,
    centers: Vec<P>,
}

impl<P: Clone> StreamingKCenter<P> {
    /// Creates an empty summary for `k` centers.
    ///
    /// # Panics
    /// Panics when `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be at least 1");
        Self {
            k,
            threshold: 0.0,
            centers: Vec::with_capacity(k + 1),
        }
    }

    /// Current centers (at most `k` once at least one overflow occurred;
    /// may briefly hold `k` before any overflow).
    pub fn centers(&self) -> &[P] {
        &self.centers
    }

    /// The current threshold τ; `opt ≥ τ/2` is the certified lower bound
    /// the 8-approximation rests on.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Inserts a point, maintaining the doubling invariants.
    pub fn insert<M: DistanceOracle<P>>(&mut self, p: P, metric: &M) {
        // Covered points are dropped.
        if self
            .centers
            .iter()
            .any(|c| metric.dist(&p, c) <= 4.0 * self.threshold)
        {
            return;
        }
        self.centers.push(p);
        while self.centers.len() > self.k {
            // Overflow: raise τ and merge.
            self.threshold = if self.threshold == 0.0 {
                // Initial τ: the smallest pairwise distance among the k+1
                // centers (all distinct, so positive).
                let mut min = f64::INFINITY;
                for i in 0..self.centers.len() {
                    for j in (i + 1)..self.centers.len() {
                        let d = metric.dist(&self.centers[i], &self.centers[j]);
                        if d > 0.0 {
                            min = min.min(d);
                        }
                    }
                }
                if min.is_finite() {
                    min
                } else {
                    // All duplicates: keep one.
                    self.centers.truncate(1);
                    return;
                }
            } else {
                2.0 * self.threshold
            };
            // Greedy merge: keep centers pairwise > τ.
            let mut kept: Vec<P> = Vec::with_capacity(self.k);
            for c in self.centers.drain(..) {
                if kept.iter().all(|q| metric.dist(&c, q) > self.threshold) {
                    kept.push(c);
                }
            }
            self.centers = kept;
        }
    }

    /// Upper bound on the summary's k-center radius over everything
    /// inserted so far: every seen point is within `4τ` of a center
    /// (invariant (b)), and `opt ≥ τ/2`, hence the factor 8.
    pub fn radius_bound(&self) -> f64 {
        4.0 * self.threshold
    }
}

/// Streaming uncertain k-center: expected points through the doubling
/// summary, with the uncertain points retained for the final assignment
/// and exact-cost evaluation.
///
/// Deprecated in favor of `ukc_stream::StreamSolver`, which keeps the
/// working set bounded (this type retains every seen point for its
/// offline finalization), reports per-epoch instrumentation, and is
/// reachable from the server and CLI. This wrapper now runs on the same
/// `ukc_stream::StreamSummary` state with a budget of exactly `k`; its
/// center sequence is bit-identical to the historical implementation
/// (pinned by the `wrapper_summary_is_bit_identical_to_the_legacy_path`
/// golden test against the untouched [`StreamingKCenter`]).
#[deprecated(
    since = "0.2.0",
    note = "use ukc_stream::StreamSolver: memory-bounded, instrumented, and served over HTTP"
)]
#[derive(Clone, Debug)]
pub struct StreamingUncertainKCenter {
    summary: ukc_stream::StreamSummary,
    seen: Vec<UncertainPoint<Point>>,
    rule: ukc_core::AssignmentRule,
}

#[allow(deprecated)]
impl StreamingUncertainKCenter {
    /// Creates an empty streaming clusterer for `k` centers, finalizing
    /// with the expected-distance rule.
    ///
    /// # Panics
    /// Panics when `k == 0` (use [`Self::with_config`] for a typed
    /// error).
    pub fn new(k: usize) -> Self {
        Self {
            summary: ukc_stream::StreamSummary::new(k),
            seen: Vec::new(),
            rule: ukc_core::AssignmentRule::ExpectedDistance,
        }
    }

    /// Creates a streaming clusterer whose finalization uses the
    /// assignment rule of `config`; `k == 0` is a typed error instead of
    /// a panic.
    pub fn with_config(
        k: usize,
        config: &ukc_core::SolverConfig,
    ) -> Result<Self, ukc_core::SolveError> {
        if k == 0 {
            return Err(ukc_core::SolveError::ZeroK);
        }
        Ok(Self {
            summary: ukc_stream::StreamSummary::new(k),
            seen: Vec::new(),
            rule: config.rule(),
        })
    }

    /// Processes one arriving uncertain point: O(z + k) — the expected
    /// point costs O(z), the summary update O(k).
    pub fn insert(&mut self, up: UncertainPoint<Point>) {
        let pbar = expected_point(&up);
        self.summary
            .insert(pbar.coords())
            .expect("locations of one instance share a dimension");
        self.seen.push(up);
    }

    /// Number of uncertain points processed.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// `true` before the first insertion.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Finalizes: current centers, the configured-rule assignment of every
    /// seen point (ED unless built via [`Self::with_config`]), and the
    /// exact expected cost. (Finalization is offline — the stream summary
    /// itself stays O(k).)
    pub fn finalize(&self) -> Option<(Vec<Point>, Vec<usize>, f64)> {
        if self.seen.is_empty() || self.summary.is_empty() {
            return None;
        }
        let set = ukc_uncertain::UncertainSet::new(self.seen.clone());
        let centers = self.summary.center_points();
        let metric = ukc_metric::Euclidean;
        let assignment = match self.rule {
            ukc_core::AssignmentRule::ExpectedDistance => {
                ukc_core::assign_ed(&set, &centers, &metric)
            }
            ukc_core::AssignmentRule::ExpectedPoint => ukc_core::assign_ep(&set, &centers, &metric),
            ukc_core::AssignmentRule::OneCenter => {
                let reps: Vec<Point> = set
                    .iter()
                    .map(ukc_uncertain::one_center_euclidean)
                    .collect();
                ukc_core::assign_oc(&set, &centers, &reps, &metric)
            }
        };
        let cost = ukc_uncertain::ecost_assigned(&set, &centers, &assignment, &metric);
        Some((centers, assignment, cost))
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use ukc_kcenter::{exact_discrete_kcenter, kcenter_cost, ExactOptions};
    use ukc_metric::Euclidean;
    use ukc_uncertain::generators::{clustered, ProbModel};

    fn stream_points(seed: u64, n: usize) -> Vec<Point> {
        let mut s = seed | 1;
        let mut rnd = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(vec![rnd() * 100.0, rnd() * 100.0]))
            .collect()
    }

    #[test]
    fn summary_keeps_at_most_k_centers() {
        let pts = stream_points(1, 200);
        let mut s = StreamingKCenter::new(4);
        for p in &pts {
            s.insert(p.clone(), &Euclidean);
            assert!(s.centers().len() <= 4 || s.threshold() == 0.0);
        }
        assert!(s.centers().len() <= 4);
    }

    #[test]
    fn streaming_radius_within_8x_offline_optimum() {
        for seed in 1..6u64 {
            let pts = stream_points(seed, 60);
            let k = 3;
            let mut s = StreamingKCenter::new(k);
            for p in &pts {
                s.insert(p.clone(), &Euclidean);
            }
            let achieved = kcenter_cost(&pts, s.centers(), &Euclidean);
            let offline =
                exact_discrete_kcenter(&pts, &pts, k, &Euclidean, ExactOptions::default()).unwrap();
            // Discrete offline optimum is within 2x of continuous, so the
            // guarantee vs discrete is 8 (the invariant is vs continuous).
            assert!(
                achieved <= 8.0 * offline.radius + 1e-9,
                "seed {seed}: streaming {achieved} vs 8 x {}",
                offline.radius
            );
            // And all inserted points are covered by the invariant bound.
            assert!(achieved <= s.radius_bound().max(1e-12) + 1e-9);
        }
    }

    #[test]
    fn duplicates_do_not_overflow() {
        let mut s = StreamingKCenter::new(2);
        let p = Point::new(vec![1.0, 1.0]);
        for _ in 0..100 {
            s.insert(p.clone(), &Euclidean);
        }
        assert_eq!(s.centers().len(), 1);
        assert_eq!(s.threshold(), 0.0);
    }

    #[test]
    fn uncertain_streaming_matches_offline_pipeline_scale() {
        let set = clustered(5, 40, 3, 2, 3, 5.0, 1.0, ProbModel::Random);
        let mut s = StreamingUncertainKCenter::new(3);
        for up in set.iter() {
            s.insert(up.clone());
        }
        assert_eq!(s.len(), 40);
        let (centers, assignment, cost) = s.finalize().expect("non-empty");
        assert!(centers.len() <= 3);
        assert_eq!(assignment.len(), 40);
        // Compare against the offline pipeline: streaming pays a constant
        // factor; on these benign workloads it stays within ~8x.
        let offline = ukc_core::Problem::euclidean(set.clone(), 3)
            .unwrap()
            .solve(
                &ukc_core::SolverConfig::builder()
                    .rule(ukc_core::AssignmentRule::ExpectedDistance)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        assert!(
            cost <= 8.0 * offline.ecost + 1e-9,
            "streaming {cost} vs offline {}",
            offline.ecost
        );
        // Sound floor: the certified lower bound still holds.
        let lb = ukc_core::lower_bound_euclidean(&set, 3);
        assert!(lb <= cost + 1e-9);
    }

    /// The golden equivalence pin for the deprecation: the wrapper now
    /// runs on `ukc_stream::StreamSummary`, and its kept-center sequence
    /// must match the untouched generic [`StreamingKCenter`] (the
    /// historical implementation) bit for bit, on streams that exercise
    /// absorption, the initial threshold fix, repeated doubling, and
    /// duplicates.
    #[test]
    fn wrapper_summary_is_bit_identical_to_the_legacy_path() {
        for (seed, n, k) in [(1u64, 300usize, 3usize), (2, 500, 5), (9, 64, 2)] {
            let mut pts = stream_points(seed, n);
            // Salt in exact duplicates so the τ = 0 absorption path runs.
            let dup = pts[0].clone();
            pts.insert(n / 2, dup.clone());
            pts.push(dup);
            let mut legacy = StreamingKCenter::new(k);
            let mut new = ukc_stream::StreamSummary::new(k);
            for p in &pts {
                legacy.insert(p.clone(), &Euclidean);
                new.insert(p.coords()).unwrap();
            }
            assert_eq!(legacy.centers().len(), new.len(), "seed {seed}");
            for (a, b) in legacy.centers().iter().zip(new.center_points()) {
                assert_eq!(a.coords(), b.coords(), "seed {seed}");
            }
            assert_eq!(
                legacy.threshold().to_bits(),
                new.threshold().to_bits(),
                "seed {seed}"
            );
        }
    }

    /// The uncertain wrapper end to end: same centers, assignment, and
    /// cost as driving the legacy summary by hand.
    #[test]
    fn wrapper_finalize_matches_the_legacy_pipeline_bit_for_bit() {
        let set = clustered(8, 60, 3, 2, 4, 6.0, 1.0, ProbModel::Random);
        let mut wrapper = StreamingUncertainKCenter::new(3);
        let mut legacy = StreamingKCenter::new(3);
        for up in set.iter() {
            wrapper.insert(up.clone());
            legacy.insert(expected_point(up), &Euclidean);
        }
        let (centers, assignment, cost) = wrapper.finalize().expect("non-empty");
        assert_eq!(centers.len(), legacy.centers().len());
        for (a, b) in centers.iter().zip(legacy.centers()) {
            assert_eq!(a.coords(), b.coords());
        }
        let expected_assignment = ukc_core::assign_ed(&set, legacy.centers(), &Euclidean);
        assert_eq!(assignment, expected_assignment);
        let expected_cost =
            ukc_uncertain::ecost_assigned(&set, legacy.centers(), &expected_assignment, &Euclidean);
        assert_eq!(cost.to_bits(), expected_cost.to_bits());
    }

    #[test]
    fn empty_stream_finalizes_to_none() {
        let s = StreamingUncertainKCenter::new(2);
        assert!(s.is_empty());
        assert!(s.finalize().is_none());
    }

    #[test]
    fn insertion_order_changes_centers_not_validity() {
        let pts = stream_points(9, 40);
        let k = 3;
        let mut fwd = StreamingKCenter::new(k);
        let mut rev = StreamingKCenter::new(k);
        for p in &pts {
            fwd.insert(p.clone(), &Euclidean);
        }
        for p in pts.iter().rev() {
            rev.insert(p.clone(), &Euclidean);
        }
        let offline =
            exact_discrete_kcenter(&pts, &pts, k, &Euclidean, ExactOptions::default()).unwrap();
        for s in [&fwd, &rev] {
            let achieved = kcenter_cost(&pts, s.centers(), &Euclidean);
            assert!(achieved <= 8.0 * offline.radius + 1e-9);
        }
    }
}
