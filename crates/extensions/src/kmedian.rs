//! Uncertain k-median — an *exact* reduction.
//!
//! The assigned uncertain k-median cost is, by linearity of expectation,
//!
//! ```text
//! Emed(C, A) = Σ_R prob(R) · Σᵢ d(P̂ᵢ, A(Pᵢ)) = Σᵢ E d(Pᵢ, A(Pᵢ)),
//! ```
//!
//! so (unlike the k-center `E[max]`, which couples the points) the
//! objective decomposes per point. Consequences implemented here:
//!
//! 1. for fixed centers the optimal assignment is the paper's ED rule;
//! 2. the whole problem reduces to deterministic k-median over the
//!    expected-distance matrix `D[i][c] = E d(Pᵢ, c)`;
//! 3. the reduction is lossless — no approximation enters until the
//!    deterministic solver does (exact enumeration for small instances,
//!    classic single-swap local search otherwise, 5-approximate by
//!    Arya et al. \[3\] in the paper's bibliography).

use ukc_metric::DistanceOracle;
use ukc_uncertain::{expected_distance, UncertainSet};

/// A k-median solution over a discrete candidate pool.
#[derive(Clone, Debug)]
pub struct KMedianSolution<P> {
    /// Chosen centers (clones of candidate pool members).
    pub centers: Vec<P>,
    /// Indices of the chosen centers in the candidate pool.
    pub center_indices: Vec<usize>,
    /// `assignment[i]` = index into `centers` (always the ED-optimal one).
    pub assignment: Vec<usize>,
    /// The exact expected k-median cost `Σᵢ E d(Pᵢ, A(Pᵢ))`.
    pub cost: f64,
}

/// Exact expected k-median cost of an explicit (centers, assignment) pair:
/// `Σᵢ E d(Pᵢ, c_{A(i)})`. O(nz) — exact by linearity, no sweep needed.
pub fn ecost_kmedian<P, M: DistanceOracle<P>>(
    set: &UncertainSet<P>,
    centers: &[P],
    assignment: &[usize],
    metric: &M,
) -> f64 {
    assert_eq!(assignment.len(), set.n(), "one center per point");
    set.iter()
        .zip(assignment.iter())
        .map(|(up, &a)| expected_distance(up, &centers[a], metric))
        .sum()
}

/// Builds the expected-distance matrix `D[i][c]` (n × m).
fn expected_distance_matrix<P, M: DistanceOracle<P>>(
    set: &UncertainSet<P>,
    candidates: &[P],
    metric: &M,
) -> Vec<f64> {
    let n = set.n();
    let m = candidates.len();
    let mut d = vec![0.0; n * m];
    for (i, up) in set.iter().enumerate() {
        for (c, cand) in candidates.iter().enumerate() {
            d[i * m + c] = expected_distance(up, cand, metric);
        }
    }
    d
}

/// Cost of a center-index subset under the matrix (each point takes its
/// best center), plus the per-point argmins.
fn subset_cost(d: &[f64], n: usize, m: usize, chosen: &[usize]) -> (f64, Vec<usize>) {
    let mut total = 0.0;
    let mut assignment = Vec::with_capacity(n);
    for i in 0..n {
        let mut best = 0usize;
        let mut best_v = f64::INFINITY;
        for (slot, &c) in chosen.iter().enumerate() {
            let v = d[i * m + c];
            if v < best_v {
                best_v = v;
                best = slot;
            }
        }
        total += best_v;
        assignment.push(best);
    }
    (total, assignment)
}

/// Exact uncertain k-median by enumerating all k-subsets of `candidates`.
///
/// Returns `None` when `C(m, k)` exceeds `max_subsets`.
///
/// # Panics
/// Panics when `k == 0` or `candidates` is empty.
pub fn uncertain_kmedian_exact<P: Clone, M: DistanceOracle<P>>(
    set: &UncertainSet<P>,
    candidates: &[P],
    k: usize,
    metric: &M,
    max_subsets: u64,
) -> Option<KMedianSolution<P>> {
    assert!(k > 0, "k must be at least 1");
    assert!(!candidates.is_empty(), "need a candidate pool");
    let n = set.n();
    let m = candidates.len();
    let k = k.min(m);
    let d = expected_distance_matrix(set, candidates, metric);
    let mut best: Option<(f64, Vec<usize>, Vec<usize>)> = None;
    let mut idx: Vec<usize> = (0..k).collect();
    let mut used: u64 = 0;
    loop {
        used += 1;
        if used > max_subsets {
            return None;
        }
        let (cost, assignment) = subset_cost(&d, n, m, &idx);
        if best.as_ref().is_none_or(|(bc, _, _)| cost < *bc) {
            best = Some((cost, idx.clone(), assignment));
        }
        // Next combination.
        let mut i = k;
        let done = loop {
            if i == 0 {
                break true;
            }
            i -= 1;
            if idx[i] != i + m - k {
                idx[i] += 1;
                for j in (i + 1)..k {
                    idx[j] = idx[j - 1] + 1;
                }
                break false;
            }
        };
        if done {
            break;
        }
    }
    let (cost, chosen, assignment) = best.expect("at least one subset");
    Some(KMedianSolution {
        centers: chosen.iter().map(|&c| candidates[c].clone()).collect(),
        center_indices: chosen,
        assignment,
        cost,
    })
}

/// Uncertain k-median by single-swap local search over the candidate pool
/// (the classic 5-approximation scheme), seeded greedily.
///
/// Deterministic: greedy seeding picks the candidate minimizing the 1-median
/// cost, then repeatedly the candidate that most reduces the cost;
/// local search then applies best-improvement swaps until none helps or
/// `max_rounds` is exhausted.
///
/// # Panics
/// Panics when `k == 0` or `candidates` is empty.
pub fn uncertain_kmedian_local_search<P: Clone, M: DistanceOracle<P>>(
    set: &UncertainSet<P>,
    candidates: &[P],
    k: usize,
    metric: &M,
    max_rounds: usize,
) -> KMedianSolution<P> {
    assert!(k > 0, "k must be at least 1");
    assert!(!candidates.is_empty(), "need a candidate pool");
    let n = set.n();
    let m = candidates.len();
    let k = k.min(m);
    let d = expected_distance_matrix(set, candidates, metric);
    // Greedy seeding.
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    let mut current_best = vec![f64::INFINITY; n];
    for _ in 0..k {
        let mut pick = usize::MAX;
        let mut pick_gain = f64::NEG_INFINITY;
        for c in 0..m {
            if chosen.contains(&c) {
                continue;
            }
            let gain: f64 = (0..n)
                .map(|i| (current_best[i] - d[i * m + c]).max(0.0))
                .sum();
            if gain > pick_gain {
                pick_gain = gain;
                pick = c;
            }
        }
        chosen.push(pick);
        for i in 0..n {
            current_best[i] = current_best[i].min(d[i * m + pick]);
        }
    }
    let (mut cost, _) = subset_cost(&d, n, m, &chosen);
    // Single-swap local search.
    for _ in 0..max_rounds {
        let mut best_swap: Option<(usize, usize, f64)> = None;
        for slot in 0..chosen.len() {
            for c in 0..m {
                if chosen.contains(&c) {
                    continue;
                }
                let old = chosen[slot];
                chosen[slot] = c;
                let (new_cost, _) = subset_cost(&d, n, m, &chosen);
                chosen[slot] = old;
                if new_cost < cost && best_swap.is_none_or(|(_, _, bc)| new_cost < bc) {
                    best_swap = Some((slot, c, new_cost));
                }
            }
        }
        match best_swap {
            Some((slot, c, new_cost)) => {
                chosen[slot] = c;
                cost = new_cost;
            }
            None => break,
        }
    }
    let (cost, assignment) = subset_cost(&d, n, m, &chosen);
    KMedianSolution {
        centers: chosen.iter().map(|&c| candidates[c].clone()).collect(),
        center_indices: chosen,
        assignment,
        cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ukc_metric::{Euclidean, Metric, Point};
    use ukc_uncertain::generators::{clustered, uniform_box, ProbModel};
    use ukc_uncertain::{RealizationIter, UncertainPoint};

    fn pool(set: &UncertainSet<Point>) -> Vec<Point> {
        set.location_pool()
    }

    #[test]
    fn linearity_identity_vs_enumeration() {
        // Σᵢ E d(Pᵢ, A(Pᵢ)) must equal the Ω-enumerated Σ expectation.
        let set = clustered(1, 4, 3, 2, 2, 4.0, 1.0, ProbModel::Random);
        let cands = pool(&set);
        let centers = vec![cands[0].clone(), cands[5].clone()];
        let assignment = vec![0usize, 1, 0, 1];
        let fast = ecost_kmedian(&set, &centers, &assignment, &Euclidean);
        let mut slow = 0.0;
        for (idx, prob) in RealizationIter::new(&set) {
            let mut sum = 0.0;
            for (i, &j) in idx.iter().enumerate() {
                sum += Euclidean.dist(&set[i].locations()[j], &centers[assignment[i]]);
            }
            slow += prob * sum;
        }
        assert!((fast - slow).abs() < 1e-9, "{fast} vs {slow}");
    }

    #[test]
    fn exact_beats_or_ties_local_search() {
        for seed in 0..5u64 {
            let set = uniform_box(seed, 6, 2, 2, 20.0, 2.0, ProbModel::Random);
            let cands = pool(&set);
            let exact = uncertain_kmedian_exact(&set, &cands, 2, &Euclidean, 1_000_000).unwrap();
            let ls = uncertain_kmedian_local_search(&set, &cands, 2, &Euclidean, 50);
            assert!(exact.cost <= ls.cost + 1e-9, "seed {seed}");
            // Local search should be within the 5-approx guarantee with
            // large margin on these easy instances.
            assert!(ls.cost <= 5.0 * exact.cost + 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn assignment_is_ed_optimal() {
        let set = clustered(3, 8, 3, 2, 2, 4.0, 1.0, ProbModel::HeavyTail);
        let cands = pool(&set);
        let sol = uncertain_kmedian_local_search(&set, &cands, 3, &Euclidean, 30);
        for (i, up) in set.iter().enumerate() {
            let assigned = expected_distance(up, &sol.centers[sol.assignment[i]], &Euclidean);
            for c in &sol.centers {
                assert!(assigned <= expected_distance(up, c, &Euclidean) + 1e-9);
            }
        }
    }

    #[test]
    fn certain_points_reduce_to_deterministic_kmedian() {
        let set = UncertainSet::new(vec![
            UncertainPoint::certain(Point::scalar(0.0)),
            UncertainPoint::certain(Point::scalar(1.0)),
            UncertainPoint::certain(Point::scalar(10.0)),
        ]);
        let cands = pool(&set);
        let sol = uncertain_kmedian_exact(&set, &cands, 2, &Euclidean, 1000).unwrap();
        // Optimal: centers {0 or 1, 10}; cost 1.
        assert!((sol.cost - 1.0).abs() < 1e-12);
    }

    #[test]
    fn more_centers_never_increase_cost() {
        let set = uniform_box(9, 8, 3, 2, 30.0, 2.0, ProbModel::Random);
        let cands = pool(&set);
        let mut prev = f64::INFINITY;
        for k in 1..=4 {
            let sol = uncertain_kmedian_exact(&set, &cands, k, &Euclidean, 10_000_000).unwrap();
            assert!(sol.cost <= prev + 1e-9, "k={k}");
            prev = sol.cost;
        }
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        let set = uniform_box(2, 6, 2, 2, 10.0, 1.0, ProbModel::Uniform);
        let cands = pool(&set);
        assert!(uncertain_kmedian_exact(&set, &cands, 3, &Euclidean, 2).is_none());
    }

    #[test]
    fn kcenter_cost_upper_bounds_scaled_kmedian() {
        // Sanity across objectives: Σᵢ E d ≤ n · E[max d], by max ≥ each.
        let set = clustered(4, 6, 3, 2, 2, 4.0, 1.0, ProbModel::Random);
        let cands = pool(&set);
        let sol = uncertain_kmedian_local_search(&set, &cands, 2, &Euclidean, 30);
        let kc = ukc_uncertain::ecost_assigned(&set, &sol.centers, &sol.assignment, &Euclidean);
        assert!(sol.cost <= set.n() as f64 * kc + 1e-9);
        assert!(kc <= sol.cost + 1e-9 || kc <= sol.cost * set.n() as f64);
    }
}
