//! [`SolverConfig`]-driven entry points for the extensions.
//!
//! The core crate's `Problem` / [`SolverConfig`] API makes the
//! (rule × strategy) combination a first-class value; these wrappers let
//! the same config object drive the k-median, k-means, and streaming
//! extensions, so a serving layer configures one pipeline once and runs
//! every objective through it. All of them validate inputs into typed
//! [`SolveError`]s instead of panicking.

use crate::kmeans::{uncertain_kmeans, KMeansSolution};
use crate::kmedian::{uncertain_kmedian_exact, uncertain_kmedian_local_search, KMedianSolution};
use ukc_core::{validate_k, CertainStrategy, SolveError, SolverConfig};
use ukc_metric::{DistanceOracle, Point};
use ukc_uncertain::UncertainSet;

/// Budget handed to the exact k-median enumerator before falling back to
/// local search (the enumerator walks `C(m, k)` subsets).
const KMEDIAN_EXACT_SUBSET_BUDGET: u64 = 2_000_000;

/// Uncertain k-median under a [`SolverConfig`].
///
/// [`CertainStrategy::ExactDiscrete`] runs the exact enumerator (falling
/// back to local search past its subset budget);
/// [`CertainStrategy::GonzalezLocalSearch`] runs local search with the
/// configured round count; everything else uses local search with the
/// default 50 rounds. The assignment is always ED — for k-median that
/// rule is optimal, not heuristic (see the crate docs).
pub fn uncertain_kmedian<P: Clone, M: DistanceOracle<P>>(
    set: &UncertainSet<P>,
    candidates: &[P],
    k: usize,
    metric: &M,
    config: &SolverConfig,
) -> Result<KMedianSolution<P>, SolveError> {
    validate_k(set.n(), k)?;
    if candidates.is_empty() {
        return Err(SolveError::EmptyCandidates);
    }
    Ok(match config.strategy() {
        CertainStrategy::ExactDiscrete => {
            uncertain_kmedian_exact(set, candidates, k, metric, KMEDIAN_EXACT_SUBSET_BUDGET)
                .unwrap_or_else(|| uncertain_kmedian_local_search(set, candidates, k, metric, 50))
        }
        CertainStrategy::GonzalezLocalSearch { rounds } => {
            uncertain_kmedian_local_search(set, candidates, k, metric, rounds)
        }
        CertainStrategy::Gonzalez | CertainStrategy::Grid => {
            uncertain_kmedian_local_search(set, candidates, k, metric, 50)
        }
    })
}

/// Lloyd iterations per restart used by [`uncertain_kmeans_configured`].
const KMEANS_ITERS: usize = 100;
/// k-means++ restarts used by [`uncertain_kmeans_configured`].
const KMEANS_RESTARTS: usize = 6;

/// Uncertain k-means under a [`SolverConfig`]: the config's seed drives
/// the k-means++ restarts, so identical configs reproduce identical
/// clusterings.
pub fn uncertain_kmeans_configured(
    set: &UncertainSet<Point>,
    k: usize,
    config: &SolverConfig,
) -> Result<KMeansSolution, SolveError> {
    validate_k(set.n(), k)?;
    Ok(uncertain_kmeans(
        set,
        k,
        config.seed(),
        KMEANS_RESTARTS,
        KMEANS_ITERS,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ukc_core::AssignmentRule;
    use ukc_metric::Euclidean;
    use ukc_uncertain::generators::{clustered, ProbModel};

    #[test]
    fn kmedian_respects_strategy() {
        let set = clustered(1, 8, 3, 2, 2, 4.0, 1.0, ProbModel::Random);
        let pool = set.location_pool();
        let cfg_ls = SolverConfig::builder()
            .strategy(CertainStrategy::GonzalezLocalSearch { rounds: 30 })
            .build()
            .unwrap();
        let ls = uncertain_kmedian(&set, &pool, 2, &Euclidean, &cfg_ls).unwrap();
        let cfg_ex = SolverConfig::builder()
            .strategy(CertainStrategy::ExactDiscrete)
            .build()
            .unwrap();
        let ex = uncertain_kmedian(&set, &pool, 2, &Euclidean, &cfg_ex).unwrap();
        // Exact never loses to local search on the k-median objective.
        assert!(ex.cost <= ls.cost + 1e-9);
    }

    #[test]
    fn typed_errors_not_panics() {
        let set = clustered(2, 4, 2, 2, 2, 4.0, 1.0, ProbModel::Random);
        let pool = set.location_pool();
        let cfg = SolverConfig::default();
        assert_eq!(
            uncertain_kmedian(&set, &pool, 0, &Euclidean, &cfg).unwrap_err(),
            SolveError::ZeroK
        );
        assert_eq!(
            uncertain_kmedian(&set, &pool, 9, &Euclidean, &cfg).unwrap_err(),
            SolveError::KExceedsN { k: 9, n: 4 }
        );
        assert_eq!(
            uncertain_kmedian(&set, &[], 2, &Euclidean, &cfg).unwrap_err(),
            SolveError::EmptyCandidates
        );
        assert_eq!(
            uncertain_kmeans_configured(&set, 0, &cfg).unwrap_err(),
            SolveError::ZeroK
        );
    }

    #[test]
    fn kmeans_seed_comes_from_config() {
        let set = clustered(3, 12, 3, 2, 3, 5.0, 1.0, ProbModel::Random);
        let mk = |seed| {
            SolverConfig::builder()
                .rule(AssignmentRule::ExpectedPoint)
                .seed(seed)
                .build()
                .unwrap()
        };
        let a = uncertain_kmeans_configured(&set, 3, &mk(7)).unwrap();
        let b = uncertain_kmeans_configured(&set, 3, &mk(7)).unwrap();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.cost, b.cost);
    }
}
