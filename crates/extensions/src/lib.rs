//! # ukc-extensions — the paper's future-work directions, implemented
//!
//! The paper's conclusion announces: *"In a future work, we intend to use
//! our approach to study the k-median and the k-mean problems."* This
//! crate carries that program out, because for the **assigned** versions
//! both objectives decompose exactly — the replace-by-representative
//! approach is not merely approximate there, it is *lossless*:
//!
//! * **Uncertain k-median** ([`kmedian`]): by linearity of expectation the
//!   assigned expected cost `Σ_R prob(R)·Σᵢ d(P̂ᵢ, A(Pᵢ))` equals
//!   `Σᵢ E d(Pᵢ, A(Pᵢ))` — so the problem *is* a deterministic k-median
//!   over the expected-distance matrix, with the ED rule as the optimal
//!   assignment. We provide exact (small instances) and local-search
//!   solvers over that reduction.
//! * **Uncertain k-means** ([`kmeans`]): the classical bias–variance
//!   identity `E‖P̂ − c‖² = ‖P̄ − c‖² + Var(P)` splits the assigned
//!   expected cost into a deterministic k-means instance on the expected
//!   points plus an irreducible variance floor. Lloyd's algorithm with
//!   k-means++ seeding solves the reduced instance; the identity itself is
//!   property-tested against enumeration.
//! * **Streaming uncertain k-center** ([`streaming`]): the doubling
//!   algorithm of Charikar et al. maintains an 8-approximate k-center
//!   summary in one pass; feeding it the O(z)-computable expected points
//!   extends the paper's pipeline to streams, the setting of the
//!   Munteanu–Sohler–Feldman reference \[25\]. Streaming has since been
//!   promoted to the dedicated `ukc-stream` crate (memory-bounded
//!   working sets, epoch instrumentation, server + CLI integration);
//!   the [`streaming::StreamingUncertainKCenter`] kept here is a
//!   `#[deprecated]`, bit-identical wrapper over that subsystem.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod configured;
pub mod kmeans;
pub mod kmedian;
pub mod streaming;

pub use configured::{uncertain_kmeans_configured, uncertain_kmedian};
pub use kmeans::{uncertain_kmeans, variance, KMeansSolution};
pub use kmedian::{
    ecost_kmedian, uncertain_kmedian_exact, uncertain_kmedian_local_search, KMedianSolution,
};
pub use streaming::StreamingKCenter;
#[allow(deprecated)]
pub use streaming::StreamingUncertainKCenter;
