//! Uncertain k-means — the bias–variance reduction.
//!
//! For the assigned uncertain k-means objective
//! `Ekm(C, A) = Σᵢ E‖P̂ᵢ − c_{A(i)}‖²` the classical identity
//!
//! ```text
//! E‖P̂ − c‖² = ‖P̄ − c‖² + Var(P),     Var(P) = E‖P̂ − P̄‖²
//! ```
//!
//! splits the cost into a deterministic k-means instance over the expected
//! points plus an instance constant `Σᵢ Var(Pᵢ)` no center placement can
//! touch. So uncertain k-means is solved by (a) computing `P̄ᵢ` in O(nz),
//! (b) running any deterministic k-means solver on them, (c) adding the
//! variance floor back. We use Lloyd's algorithm with k-means++ seeding;
//! the identity itself is verified against realization enumeration in the
//! tests, making the reduction's exactness a tested invariant rather than
//! a comment.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ukc_metric::Point;
use ukc_uncertain::{expected_point, UncertainSet};

/// The output of [`uncertain_kmeans`].
#[derive(Clone, Debug)]
pub struct KMeansSolution {
    /// Cluster centers in `ℝ^d` (means of assigned expected points).
    pub centers: Vec<Point>,
    /// `assignment[i]` = index into `centers`.
    pub assignment: Vec<usize>,
    /// The exact expected k-means cost `Σᵢ E‖P̂ᵢ − c_{A(i)}‖²`.
    pub cost: f64,
    /// The irreducible variance floor `Σᵢ Var(Pᵢ)` included in `cost`.
    pub variance_floor: f64,
}

/// The variance `Var(P) = E‖P̂ − P̄‖²` of an uncertain point. O(z).
pub fn variance(up: &ukc_uncertain::UncertainPoint<Point>) -> f64 {
    let pbar = expected_point(up);
    up.support().map(|(loc, p)| p * loc.dist_sq(&pbar)).sum()
}

/// Exact expected k-means cost of an explicit (centers, assignment) pair,
/// via the bias–variance identity. O(nz).
pub fn ecost_kmeans(set: &UncertainSet<Point>, centers: &[Point], assignment: &[usize]) -> f64 {
    assert_eq!(assignment.len(), set.n(), "one center per point");
    set.iter()
        .zip(assignment.iter())
        .map(|(up, &a)| expected_point(up).dist_sq(&centers[a]) + variance(up))
        .sum()
}

/// k-means++ seeding over weighted points.
fn kmeanspp(points: &[Point], k: usize, rng: &mut StdRng) -> Vec<Point> {
    let n = points.len();
    let mut centers = Vec::with_capacity(k);
    centers.push(points[rng.gen_range(0..n)].clone());
    let mut d2: Vec<f64> = points.iter().map(|p| p.dist_sq(&centers[0])).collect();
    while centers.len() < k {
        let total: f64 = d2.iter().sum();
        if total <= 0.0 {
            // All points coincide with chosen centers; duplicate one.
            centers.push(centers[0].clone());
            continue;
        }
        let mut pick = rng.gen::<f64>() * total;
        let mut idx = 0;
        for (i, &w) in d2.iter().enumerate() {
            pick -= w;
            if pick <= 0.0 {
                idx = i;
                break;
            }
        }
        let c = points[idx].clone();
        for (i, p) in points.iter().enumerate() {
            d2[i] = d2[i].min(p.dist_sq(&c));
        }
        centers.push(c);
    }
    centers
}

/// Uncertain k-means via the bias–variance reduction: k-means++ seeded
/// Lloyd iterations on the expected points, variance floor added back.
///
/// Deterministic in `seed`. `restarts` independent seedings are run and
/// the best kept (k-means++ is randomized; 4–8 restarts is customary).
///
/// # Panics
/// Panics when `k == 0` or `restarts == 0`.
pub fn uncertain_kmeans(
    set: &UncertainSet<Point>,
    k: usize,
    seed: u64,
    restarts: usize,
    max_iters: usize,
) -> KMeansSolution {
    assert!(k > 0, "k must be at least 1");
    assert!(restarts > 0, "need at least one restart");
    let reps: Vec<Point> = set.iter().map(expected_point).collect();
    let floor: f64 = set.iter().map(variance).sum();
    let n = reps.len();
    let k = k.min(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best: Option<(f64, Vec<Point>, Vec<usize>)> = None;
    for _ in 0..restarts {
        let mut centers = kmeanspp(&reps, k, &mut rng);
        let mut assignment = vec![0usize; n];
        for _ in 0..max_iters {
            // Assign.
            let mut changed = false;
            for (i, p) in reps.iter().enumerate() {
                let mut a = 0usize;
                let mut av = f64::INFINITY;
                for (c, center) in centers.iter().enumerate() {
                    let v = p.dist_sq(center);
                    if v < av {
                        av = v;
                        a = c;
                    }
                }
                if assignment[i] != a {
                    assignment[i] = a;
                    changed = true;
                }
            }
            // Update: cluster means (empty clusters keep their center).
            let dim = reps[0].dim();
            let mut sums = vec![Point::origin(dim); k];
            let mut counts = vec![0usize; k];
            for (i, p) in reps.iter().enumerate() {
                sums[assignment[i]].add_scaled_in_place(1.0, p);
                counts[assignment[i]] += 1;
            }
            for c in 0..k {
                if counts[c] > 0 {
                    centers[c] = sums[c].scale(1.0 / counts[c] as f64);
                }
            }
            if !changed {
                break;
            }
        }
        let bias: f64 = reps
            .iter()
            .zip(assignment.iter())
            .map(|(p, &a)| p.dist_sq(&centers[a]))
            .sum();
        if best.as_ref().is_none_or(|(bc, _, _)| bias < *bc) {
            best = Some((bias, centers, assignment));
        }
    }
    let (bias, centers, assignment) = best.expect("restarts >= 1");
    KMeansSolution {
        centers,
        assignment,
        cost: bias + floor,
        variance_floor: floor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ukc_metric::{Euclidean, Metric};
    use ukc_uncertain::generators::{clustered, uniform_box, ProbModel};
    use ukc_uncertain::{RealizationIter, UncertainPoint};

    #[test]
    fn bias_variance_identity_vs_enumeration() {
        let set = clustered(1, 4, 3, 2, 2, 4.0, 1.0, ProbModel::Random);
        let centers = vec![Point::new(vec![1.0, 2.0]), Point::new(vec![50.0, 40.0])];
        let assignment = vec![0usize, 1, 0, 1];
        let fast = ecost_kmeans(&set, &centers, &assignment);
        let mut slow = 0.0;
        for (idx, prob) in RealizationIter::new(&set) {
            let mut sum = 0.0;
            for (i, &j) in idx.iter().enumerate() {
                let d = Euclidean.dist(&set[i].locations()[j], &centers[assignment[i]]);
                sum += d * d;
            }
            slow += prob * sum;
        }
        assert!((fast - slow).abs() < 1e-8, "{fast} vs {slow}");
    }

    #[test]
    fn variance_of_certain_point_is_zero() {
        let up = UncertainPoint::certain(Point::new(vec![3.0, 4.0]));
        assert!(variance(&up).abs() < 1e-12);
    }

    #[test]
    fn variance_hand_computed() {
        // Two locations ±1 around 0 with equal probability: Var = 1.
        let up = UncertainPoint::new(
            vec![Point::scalar(-1.0), Point::scalar(1.0)],
            vec![0.5, 0.5],
        )
        .unwrap();
        assert!((variance(&up) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cost_never_below_variance_floor() {
        for seed in 0..5u64 {
            let set = uniform_box(seed, 12, 3, 2, 20.0, 2.0, ProbModel::Random);
            let sol = uncertain_kmeans(&set, 3, seed, 4, 50);
            assert!(sol.cost >= sol.variance_floor - 1e-9, "seed {seed}");
            // And the reported cost matches the identity-based evaluator.
            let recomputed = ecost_kmeans(&set, &sol.centers, &sol.assignment);
            assert!((sol.cost - recomputed).abs() < 1e-8, "seed {seed}");
        }
    }

    #[test]
    fn separated_clusters_recovered() {
        // Two tight separated clusters: k=2 cost ≈ floor + tiny bias.
        let mk = |base: f64, seed: u64| {
            let mut v = Vec::new();
            let mut s = seed | 1;
            let mut rnd = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 11) as f64 / (1u64 << 53) as f64
            };
            for _ in 0..6 {
                let x = base + rnd();
                v.push(
                    UncertainPoint::new(
                        vec![Point::scalar(x - 0.1), Point::scalar(x + 0.1)],
                        vec![0.5, 0.5],
                    )
                    .unwrap(),
                );
            }
            v
        };
        let mut pts = mk(0.0, 3);
        pts.extend(mk(100.0, 5));
        let set = UncertainSet::new(pts);
        let sol = uncertain_kmeans(&set, 2, 1, 6, 100);
        // Bias must be cluster-scale, nowhere near the 100-gap scale.
        assert!(sol.cost - sol.variance_floor < 10.0, "bias too large");
        assert!(sol.assignment[..6].iter().all(|&a| a == sol.assignment[0]));
        assert!(sol.assignment[6..].iter().all(|&a| a == sol.assignment[6]));
    }

    #[test]
    fn more_centers_never_increase_cost_much() {
        let set = uniform_box(7, 15, 3, 2, 20.0, 1.5, ProbModel::Random);
        let k1 = uncertain_kmeans(&set, 1, 2, 6, 100);
        let k4 = uncertain_kmeans(&set, 4, 2, 6, 100);
        assert!(k4.cost <= k1.cost + 1e-9);
        // Both share the same floor.
        assert!((k1.variance_floor - k4.variance_floor).abs() < 1e-12);
    }

    #[test]
    fn deterministic_in_seed() {
        let set = clustered(9, 10, 3, 2, 2, 4.0, 1.0, ProbModel::Random);
        let a = uncertain_kmeans(&set, 2, 42, 3, 50);
        let b = uncertain_kmeans(&set, 2, 42, 3, 50);
        assert_eq!(a.assignment, b.assignment);
        assert!((a.cost - b.cost).abs() < 1e-15);
    }

    #[test]
    fn k_ge_n_leaves_only_variance() {
        let set = uniform_box(4, 5, 2, 2, 10.0, 1.0, ProbModel::Uniform);
        let sol = uncertain_kmeans(&set, 10, 1, 4, 50);
        // A center per expected point: bias 0, cost = floor.
        assert!((sol.cost - sol.variance_floor).abs() < 1e-9);
    }
}
