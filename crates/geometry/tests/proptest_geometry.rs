//! Property tests for the geometric primitives.

use proptest::prelude::*;
use ukc_geometry::median::fermat_weber_cost;
use ukc_geometry::{
    geometric_median, min_enclosing_ball, min_enclosing_ball_approx, pattern_search,
    ConvexPiecewiseLinear, PatternSearchOptions, WeiszfeldOptions,
};
use ukc_metric::Point;

fn points(n: std::ops::RangeInclusive<usize>, dim: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(prop::collection::vec(-50.0f64..50.0, dim..=dim), n)
        .prop_map(|rows| rows.into_iter().map(Point::new).collect())
}

fn weights(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.05f64..1.0, n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The exact MEB encloses every point and is no larger than the
    /// (1+ε) approximation.
    #[test]
    fn meb_encloses_and_beats_approx(pts in points(1..=20, 3)) {
        let exact = min_enclosing_ball(&pts).unwrap();
        for p in &pts {
            prop_assert!(exact.contains(p, 1e-7 * exact.radius.max(1.0)));
        }
        let approx = min_enclosing_ball_approx(&pts, 0.1).unwrap();
        prop_assert!(exact.radius <= approx.radius + 1e-7);
        prop_assert!(approx.radius <= 1.1 * exact.radius + 1e-7);
    }

    /// MEB radius is at least half the diameter and at most the diameter.
    #[test]
    fn meb_radius_diameter_sandwich(pts in points(2..=12, 2)) {
        let exact = min_enclosing_ball(&pts).unwrap();
        let diameter = {
            let mut d = 0.0f64;
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len() {
                    d = d.max(pts[i].dist(&pts[j]));
                }
            }
            d
        };
        prop_assert!(exact.radius >= diameter / 2.0 - 1e-7);
        prop_assert!(exact.radius <= diameter + 1e-7);
    }

    /// MEB is invariant under point duplication.
    #[test]
    fn meb_invariant_under_duplication(pts in points(1..=8, 2)) {
        let a = min_enclosing_ball(&pts).unwrap();
        let mut doubled = pts.clone();
        doubled.extend(pts.iter().cloned());
        let b = min_enclosing_ball(&doubled).unwrap();
        prop_assert!((a.radius - b.radius).abs() < 1e-7);
    }

    /// Weiszfeld's output cost is never beaten by any input location or
    /// the centroid (first-order optimality spot checks).
    #[test]
    fn weiszfeld_beats_natural_candidates(pts in points(1..=8, 2), ws in weights(8)) {
        let w = &ws[..pts.len()];
        let med = geometric_median(&pts, w, WeiszfeldOptions::default()).unwrap();
        let mc = fermat_weber_cost(&med, &pts, w);
        for p in &pts {
            prop_assert!(mc <= fermat_weber_cost(p, &pts, w) + 1e-6);
        }
        let centroid = Point::weighted_centroid(&pts, w).unwrap();
        prop_assert!(mc <= fermat_weber_cost(&centroid, &pts, w) + 1e-6);
    }

    /// Convexity of the PL construction: f((x+y)/2) ≤ (f(x)+f(y))/2.
    #[test]
    fn convex_pl_is_convex(
        anchors in prop::collection::vec(-50.0f64..50.0, 1..=6),
        ws in prop::collection::vec(0.05f64..1.0, 6),
        x in -60.0f64..60.0,
        y in -60.0f64..60.0,
    ) {
        let w = &ws[..anchors.len()];
        let f = ConvexPiecewiseLinear::from_weighted_abs(&anchors, w, 0.0).unwrap();
        let mid = 0.5 * (x + y);
        prop_assert!(f.eval(mid) <= 0.5 * (f.eval(x) + f.eval(y)) + 1e-9);
    }

    /// Level sets are monotone in r: r1 ≤ r2 ⟹ levelset(r1) ⊆ levelset(r2).
    #[test]
    fn level_sets_nested(
        anchors in prop::collection::vec(-50.0f64..50.0, 1..=6),
        ws in prop::collection::vec(0.05f64..1.0, 6),
        dr1 in 0.01f64..20.0,
        dr2 in 0.01f64..20.0,
    ) {
        let w = &ws[..anchors.len()];
        let f = ConvexPiecewiseLinear::from_weighted_abs(&anchors, w, 0.0).unwrap();
        let (_, fmin) = f.min();
        let (rlo, rhi) = if dr1 <= dr2 { (fmin + dr1, fmin + dr2) } else { (fmin + dr2, fmin + dr1) };
        let (lo1, hi1) = f.level_set(rlo).unwrap();
        let (lo2, hi2) = f.level_set(rhi).unwrap();
        prop_assert!(lo2 <= lo1 + 1e-9);
        prop_assert!(hi1 <= hi2 + 1e-9);
    }

    /// Pattern search never returns a worse point than its start.
    #[test]
    fn pattern_search_monotone(start in prop::collection::vec(-20.0f64..20.0, 2..=3), tx in -10.0f64..10.0) {
        let target = Point::new(vec![tx; start.len()]);
        let s = Point::new(start);
        let f0 = s.dist_sq(&target);
        let (_, fx) = pattern_search(
            |p| p.dist_sq(&target),
            &s,
            PatternSearchOptions { max_evals: 10_000, ..Default::default() },
        );
        prop_assert!(fx <= f0 + 1e-12);
    }
}
