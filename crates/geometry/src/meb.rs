//! Minimum enclosing balls.
//!
//! Two solvers are provided:
//!
//! * [`min_enclosing_ball`] — exact Welzl recursion with randomized-style
//!   move-to-front ordering, working in any dimension. Expected O(n) for
//!   fixed `d`; the boundary set never exceeds `d + 1` points.
//! * [`min_enclosing_ball_approx`] — the Bădoiu–Clarkson core-set iteration,
//!   a (1+ε)-approximation in `O(n·d/ε²)` that is independent of the
//!   combinatorial structure and therefore robust for large `d`.

use ukc_metric::batch::{dist_sq_blocked, dist_sq_scalar, dot_blocked};
use ukc_metric::{Kernel, Point, PointId, PointStore};

/// A ball `{x : ‖x − center‖ ≤ radius}`.
#[derive(Clone, Debug, PartialEq)]
pub struct Ball {
    /// Center of the ball.
    pub center: Point,
    /// Radius of the ball (non-negative).
    pub radius: f64,
}

impl Ball {
    /// `true` when `p` lies inside the ball, with absolute slack `tol`.
    pub fn contains(&self, p: &Point, tol: f64) -> bool {
        self.center.dist(p) <= self.radius + tol
    }
}

/// Relative tolerance for in-ball tests inside the Welzl recursion.
const WELZL_EPS: f64 = 1e-10;

/// Exact minimum enclosing ball of `points` (any dimension) by Welzl's
/// algorithm.
///
/// Returns `None` for an empty input. The implementation is recursive with
/// a move-to-front heuristic, which keeps the expected recursion depth and
/// running time linear for fixed dimension without needing an RNG (the MTF
/// reordering breaks adversarial orders after the first pass).
///
/// # Panics
/// Panics if the points have mismatched dimensions.
pub fn min_enclosing_ball(points: &[Point]) -> Option<Ball> {
    if points.is_empty() {
        return None;
    }
    let dim = points[0].dim();
    assert!(
        points.iter().all(|p| p.dim() == dim),
        "all points must share a dimension"
    );
    let mut pts: Vec<Point> = points.to_vec();
    let n = pts.len();
    let mut support: Vec<Point> = Vec::with_capacity(dim + 1);
    let ball = welzl_mtf(&mut pts, n, &mut support, dim);
    Some(ball)
}

/// Welzl recursion over the first `n` points of `pts` with current boundary
/// `support`; moves violating points to the front.
fn welzl_mtf(pts: &mut Vec<Point>, n: usize, support: &mut Vec<Point>, dim: usize) -> Ball {
    let mut ball = ball_from_support(support, dim);
    if support.len() == dim + 1 {
        return ball;
    }
    let mut i = 0;
    while i < n {
        let p = pts[i].clone();
        let scale = ball.radius.max(1.0);
        if ball.center.dim() != p.dim() || !ball.contains(&p, WELZL_EPS * scale) {
            support.push(p.clone());
            ball = welzl_mtf(pts, i, support, dim);
            support.pop();
            // Move-to-front: p is likely on the boundary of future balls.
            pts[..=i].rotate_right(1);
        }
        i += 1;
    }
    ball
}

/// Smallest ball with all of `support` on its boundary (the circumball
/// restricted to the affine hull of `support`).
///
/// Degenerate (affinely dependent) supports fall back to dropping the
/// dependent point, which is the correct behavior inside Welzl: a dependent
/// boundary point is already enclosed by the circumball of the others.
fn ball_from_support(support: &[Point], dim: usize) -> Ball {
    match support.len() {
        0 => Ball {
            center: Point::origin(dim),
            radius: -1.0, // an empty ball: contains nothing
        },
        1 => Ball {
            center: support[0].clone(),
            radius: 0.0,
        },
        _ => circumball(support).unwrap_or_else(|| {
            // Affinely dependent support: drop the last point.
            ball_from_support(&support[..support.len() - 1], dim)
        }),
    }
}

/// Circumball of affinely independent points: the unique smallest ball with
/// all points on its boundary, whose center lies in their affine hull.
///
/// Solves `A λ = b` with `A_{ij} = 2 (pᵢ−p₀)·(pⱼ−p₀)`, `b_i = ‖pᵢ−p₀‖²`,
/// then `c = p₀ + Σ λᵢ (pᵢ−p₀)`. Returns `None` when the system is singular
/// (affinely dependent support).
fn circumball(points: &[Point]) -> Option<Ball> {
    let m = points.len() - 1;
    let p0 = &points[0];
    let diffs: Vec<Point> = points[1..].iter().map(|p| p - p0).collect();
    let mut a = vec![vec![0.0; m]; m];
    let mut b = vec![0.0; m];
    for i in 0..m {
        for j in 0..m {
            a[i][j] = 2.0
                * diffs[i]
                    .coords()
                    .iter()
                    .zip(diffs[j].coords())
                    .map(|(x, y)| x * y)
                    .sum::<f64>();
        }
        b[i] = diffs[i].norm_sq();
    }
    let lambda = solve_linear(&mut a, &mut b)?;
    let mut center = p0.clone();
    for (l, d) in lambda.iter().zip(diffs.iter()) {
        center.add_scaled_in_place(*l, d);
    }
    let radius = center.dist(p0);
    Some(Ball { center, radius })
}

/// Gaussian elimination with partial pivoting; consumes `a` and `b`.
/// Returns `None` on a (numerically) singular system.
#[allow(clippy::needless_range_loop)] // lockstep row elimination reads clearer indexed
fn solve_linear(a: &mut [Vec<f64>], b: &mut [f64]) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..n {
            let f = a[row][col] / a[col][col];
            for c in col..n {
                a[row][c] -= f * a[col][c];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut s = b[row];
        for c in (row + 1)..n {
            s -= a[row][c] * x[c];
        }
        x[row] = s / a[row][row];
    }
    Some(x)
}

/// Bădoiu–Clarkson (1+ε)-approximate minimum enclosing ball.
///
/// Iterates `⌈1/ε²⌉` rounds of "walk the center toward the farthest point";
/// the returned radius is at most `(1+ε)` times the optimal MEB radius.
/// Returns `None` for an empty input.
///
/// # Panics
/// Panics if `eps` is not strictly positive or points have mismatched
/// dimensions.
pub fn min_enclosing_ball_approx(points: &[Point], eps: f64) -> Option<Ball> {
    assert!(eps > 0.0, "eps must be positive");
    if points.is_empty() {
        return None;
    }
    let dim = points[0].dim();
    assert!(
        points.iter().all(|p| p.dim() == dim),
        "all points must share a dimension"
    );
    min_enclosing_ball_approx_store(&PointStore::from_points(points), eps, Kernel::default())
}

/// [`min_enclosing_ball_approx`] over an already-built [`PointStore`],
/// with an explicit distance kernel: every round is one blocked
/// farthest-point sweep over the contiguous coordinate buffer instead of
/// `n` boxed-point distance calls.
///
/// Returns `None` for an empty store.
///
/// # Panics
/// Panics if `eps` is not strictly positive.
pub fn min_enclosing_ball_approx_store(
    store: &PointStore,
    eps: f64,
    kernel: Kernel,
) -> Option<Ball> {
    assert!(eps > 0.0, "eps must be positive");
    if store.is_empty() {
        return None;
    }
    let rounds = (1.0 / (eps * eps)).ceil() as usize + 1;
    let mut center: Vec<f64> = store.coords(PointId(0)).to_vec();
    // The farthest-point sweep against the moving center, by the chosen
    // kernel (the center itself is not a store member, so its squared
    // norm is refreshed per round).
    let sweep = |center: &[f64]| -> (usize, f64) {
        let center_norm_sq = dot_blocked(center, center);
        let mut far = (0usize, f64::NEG_INFINITY);
        for i in 0..store.len() {
            let id = PointId(i);
            let d_sq = match kernel {
                Kernel::Scalar => dist_sq_scalar(store.coords(id), center),
                // The moving center is synthesized (not a store row), so
                // the tiled storage/norm caches don't apply; blocked
                // arithmetic shares its tolerance contract.
                Kernel::Blocked | Kernel::Tiled => {
                    dist_sq_blocked(store.coords(id), store.norm_sq(id), center, center_norm_sq)
                }
            };
            if d_sq > far.1 {
                far = (i, d_sq);
            }
        }
        far
    };
    for t in 1..=rounds {
        let (far, _) = sweep(&center);
        let step = 1.0 / (t as f64 + 1.0);
        for (c, &f) in center.iter_mut().zip(store.coords(PointId(far))) {
            *c = (1.0 - step) * *c + step * f;
        }
    }
    let (_, radius_sq) = sweep(&center);
    Some(Ball {
        center: Point::new(center),
        radius: radius_sq.max(0.0).sqrt(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_encloses(ball: &Ball, pts: &[Point]) {
        for p in pts {
            assert!(
                ball.contains(p, 1e-7 * ball.radius.max(1.0)),
                "point {p:?} outside ball {ball:?}"
            );
        }
    }

    #[test]
    fn empty_input() {
        assert!(min_enclosing_ball(&[]).is_none());
        assert!(min_enclosing_ball_approx(&[], 0.1).is_none());
    }

    #[test]
    fn single_point() {
        let p = Point::new(vec![2.0, 3.0]);
        let b = min_enclosing_ball(std::slice::from_ref(&p)).unwrap();
        assert_eq!(b.center, p);
        assert_eq!(b.radius, 0.0);
    }

    #[test]
    fn two_points_diameter() {
        let pts = vec![Point::new(vec![0.0, 0.0]), Point::new(vec![4.0, 0.0])];
        let b = min_enclosing_ball(&pts).unwrap();
        assert!((b.radius - 2.0).abs() < 1e-9);
        assert!((b.center.coords()[0] - 2.0).abs() < 1e-9);
        assert_encloses(&b, &pts);
    }

    #[test]
    fn equilateral_triangle() {
        // Equilateral triangle with side 1: circumradius = 1/sqrt(3).
        let h = 3f64.sqrt() / 2.0;
        let pts = vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![1.0, 0.0]),
            Point::new(vec![0.5, h]),
        ];
        let b = min_enclosing_ball(&pts).unwrap();
        assert!((b.radius - 1.0 / 3f64.sqrt()).abs() < 1e-9);
        assert_encloses(&b, &pts);
    }

    #[test]
    fn obtuse_triangle_uses_two_point_ball() {
        // Obtuse triangle: MEB is the diameter ball of the longest side.
        let pts = vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![10.0, 0.0]),
            Point::new(vec![5.0, 0.1]),
        ];
        let b = min_enclosing_ball(&pts).unwrap();
        assert!((b.radius - 5.0).abs() < 1e-9);
        assert_encloses(&b, &pts);
    }

    #[test]
    fn collinear_points() {
        let pts: Vec<Point> = (0..20)
            .map(|i| Point::new(vec![i as f64, 2.0 * i as f64]))
            .collect();
        let b = min_enclosing_ball(&pts).unwrap();
        let expected = pts[0].dist(&pts[19]) / 2.0;
        assert!((b.radius - expected).abs() < 1e-8);
        assert_encloses(&b, &pts);
    }

    #[test]
    fn duplicate_points() {
        let pts = vec![
            Point::new(vec![1.0, 1.0]),
            Point::new(vec![1.0, 1.0]),
            Point::new(vec![1.0, 1.0]),
        ];
        let b = min_enclosing_ball(&pts).unwrap();
        assert!(b.radius.abs() < 1e-12);
    }

    #[test]
    fn unit_simplex_3d() {
        // Regular tetrahedron corners of the unit cube; circumradius sqrt(3)/2
        // around the cube center.
        let pts = vec![
            Point::new(vec![0.0, 0.0, 0.0]),
            Point::new(vec![1.0, 1.0, 0.0]),
            Point::new(vec![1.0, 0.0, 1.0]),
            Point::new(vec![0.0, 1.0, 1.0]),
        ];
        let b = min_enclosing_ball(&pts).unwrap();
        assert!((b.radius - 3f64.sqrt() / 2.0).abs() < 1e-9);
        assert_encloses(&b, &pts);
    }

    #[test]
    fn interior_points_do_not_change_ball() {
        let mut pts = vec![Point::new(vec![-3.0, 0.0]), Point::new(vec![3.0, 0.0])];
        for i in 0..50 {
            let t = i as f64 / 50.0;
            pts.push(Point::new(vec![2.0 * t - 1.0, t - 0.5]));
        }
        let b = min_enclosing_ball(&pts).unwrap();
        assert!((b.radius - 3.0).abs() < 1e-8);
        assert_encloses(&b, &pts);
    }

    #[test]
    fn approx_within_eps_of_exact() {
        // Pseudo-random point cloud (deterministic LCG to avoid an RNG dep).
        let mut state: u64 = 0x9E3779B97F4A7C15;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 10.0 - 5.0
        };
        let pts: Vec<Point> = (0..200)
            .map(|_| Point::new(vec![next(), next(), next()]))
            .collect();
        let exact = min_enclosing_ball(&pts).unwrap();
        for &eps in &[0.5, 0.1, 0.02] {
            let approx = min_enclosing_ball_approx(&pts, eps).unwrap();
            assert_encloses(&approx, &pts);
            assert!(
                approx.radius <= (1.0 + eps) * exact.radius + 1e-9,
                "eps={eps}: approx {} vs exact {}",
                approx.radius,
                exact.radius
            );
            assert!(approx.radius >= exact.radius - 1e-9);
        }
    }

    #[test]
    fn exact_beats_or_ties_approx_high_dim() {
        let mut state: u64 = 42;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let pts: Vec<Point> = (0..60)
            .map(|_| Point::new((0..8).map(|_| next()).collect()))
            .collect();
        let exact = min_enclosing_ball(&pts).unwrap();
        let approx = min_enclosing_ball_approx(&pts, 0.05).unwrap();
        assert!(exact.radius <= approx.radius + 1e-9);
        assert_encloses(&exact, &pts);
    }
}
