//! One-dimensional convex piecewise-linear functions.
//!
//! The expected distance of a 1-D uncertain point to a location `x`,
//! `E_i(x) = Σⱼ pᵢⱼ·|Pᵢⱼ − x|`, is convex and piecewise linear with
//! breakpoints at the locations. The exact 1-D solver (paper Table 1 row 8,
//! after Wang & Zhang \[26\]) needs exactly three operations on such
//! functions: evaluate, minimize, and compute the level set
//! `{x : f(x) ≤ r}` — which by convexity is an interval. This module
//! implements a canonical breakpoint/slope representation supporting all
//! three with short walks over the pieces.

/// A convex piecewise-linear function `ℝ → ℝ` represented by its
/// breakpoints and the slope of each piece.
///
/// Invariants (enforced by the constructors):
/// * breakpoints strictly increasing;
/// * slopes strictly increasing (convexity), one more slope than breakpoints;
/// * finite values everywhere.
#[derive(Clone, Debug, PartialEq)]
pub struct ConvexPiecewiseLinear {
    /// Breakpoint abscissae, strictly increasing. May be empty (affine
    /// function).
    xs: Vec<f64>,
    /// `slopes[i]` is the slope on `(xs[i-1], xs[i])`; `slopes[0]` applies on
    /// `(-∞, xs[0])` and `slopes[m]` on `(xs[m-1], ∞)`.
    slopes: Vec<f64>,
    /// Function value at `xs[0]` (or at 0 for an affine function).
    anchor_value: f64,
}

impl ConvexPiecewiseLinear {
    /// Builds `f(x) = Σ wᵢ·|x − aᵢ| + offset`.
    ///
    /// Returns `None` when inputs are empty/mismatched, a weight is negative,
    /// all weights are zero, or any value is non-finite.
    pub fn from_weighted_abs(anchors: &[f64], weights: &[f64], offset: f64) -> Option<Self> {
        if anchors.is_empty() || anchors.len() != weights.len() || !offset.is_finite() {
            return None;
        }
        if anchors.iter().any(|a| !a.is_finite()) {
            return None;
        }
        if weights.iter().any(|&w| !w.is_finite() || w < 0.0) {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        // Sort and merge duplicate anchors.
        let mut order: Vec<usize> = (0..anchors.len()).collect();
        order.sort_by(|&i, &j| anchors[i].partial_cmp(&anchors[j]).expect("finite"));
        let mut xs: Vec<f64> = Vec::with_capacity(anchors.len());
        let mut ws: Vec<f64> = Vec::with_capacity(anchors.len());
        for &i in &order {
            if weights[i] == 0.0 {
                continue;
            }
            if let Some(last) = xs.last() {
                if *last == anchors[i] {
                    *ws.last_mut().expect("parallel") += weights[i];
                    continue;
                }
            }
            xs.push(anchors[i]);
            ws.push(weights[i]);
        }
        // Slopes: on (-inf, xs[0]) the slope is -total; each anchor adds 2w.
        let mut slopes = Vec::with_capacity(xs.len() + 1);
        let mut s = -total;
        slopes.push(s);
        for &w in &ws {
            s += 2.0 * w;
            slopes.push(s);
        }
        // Value at xs[0]: sum of w_i * (a_i - xs[0]) for a_i >= xs[0].
        let x0 = xs[0];
        let anchor_value = xs
            .iter()
            .zip(ws.iter())
            .map(|(a, w)| w * (a - x0))
            .sum::<f64>()
            + offset;
        Some(Self {
            xs,
            slopes,
            anchor_value,
        })
    }

    /// Evaluates `f(x)` by a linear walk across the pieces between the
    /// anchor and `x` (O(m) worst case; the solver only evaluates near
    /// segment boundaries, where the walk is short).
    pub fn eval(&self, x: f64) -> f64 {
        if self.xs.is_empty() {
            return self.anchor_value + self.slopes[0] * x;
        }
        let x0 = self.xs[0];
        if x == x0 {
            return self.anchor_value;
        }
        let mut v = self.anchor_value;
        if x < x0 {
            v + self.slopes[0] * (x - x0)
        } else {
            // Accumulate across interior breakpoints up to x.
            let mut prev = x0;
            let mut i = 1; // segment between xs[i-1] and xs[i] has slope slopes[i]
            while i < self.xs.len() && self.xs[i] < x {
                v += self.slopes[i] * (self.xs[i] - prev);
                prev = self.xs[i];
                i += 1;
            }
            v + self.slopes[i] * (x - prev)
        }
    }

    /// The (lowest) minimizer and the minimum value.
    pub fn min(&self) -> (f64, f64) {
        if self.xs.is_empty() {
            // Affine with slope 0 is the only bounded case; constructors do
            // not produce unbounded-from-below functions with anchors, but be
            // defensive for the affine case.
            return (0.0, self.anchor_value);
        }
        // First breakpoint where the outgoing slope becomes >= 0.
        let mut v = self.anchor_value;
        let mut prev = self.xs[0];
        if self.slopes[1] >= 0.0 {
            return (prev, v);
        }
        for i in 1..self.xs.len() {
            v += self.slopes[i] * (self.xs[i] - prev);
            prev = self.xs[i];
            if self.slopes[i + 1] >= 0.0 {
                return (prev, v);
            }
        }
        (prev, v)
    }

    /// The level set `{x : f(x) ≤ r}` as a closed interval, or `None` when
    /// the level set is empty.
    ///
    /// By convexity the level set is an interval `[lo, hi]`; endpoints are
    /// computed exactly by inverting the boundary pieces.
    pub fn level_set(&self, r: f64) -> Option<(f64, f64)> {
        let (xmin, fmin) = self.min();
        if fmin > r {
            return None;
        }
        // Left endpoint: walk left from xmin while the value stays <= r.
        let lo = self.invert_left(r, xmin);
        let hi = self.invert_right(r, xmin);
        Some((lo, hi))
    }

    /// Largest `x ≤ start` with `f(x) = r` (walking left), assuming
    /// `f(start) ≤ r`. If the function is constant at or below `r` to `-∞`
    /// (impossible for weighted-abs constructions), returns `-∞`.
    fn invert_left(&self, r: f64, start: f64) -> f64 {
        // Find the index of the first breakpoint >= start.
        let mut i = self.xs.partition_point(|&b| b < start);
        let mut x = start;
        let mut v = self.eval(start);
        loop {
            // Segment to the left of x has slope slopes[i] (for x in
            // (xs[i-1], xs[i])); at x == xs[i], left slope is slopes[i].
            let slope = self.slopes[i.min(self.slopes.len() - 1)];
            let left_bp = if i == 0 {
                f64::NEG_INFINITY
            } else {
                self.xs[i - 1]
            };
            if slope > 0.0 {
                // Moving left decreases f; cross into the next segment.
                if left_bp.is_infinite() {
                    return f64::NEG_INFINITY; // f decreases forever: cannot happen for valid constructions
                }
                v -= slope * (x - left_bp);
                x = left_bp;
                i -= 1;
            } else if slope == 0.0 {
                if left_bp.is_infinite() {
                    return f64::NEG_INFINITY;
                }
                x = left_bp;
                i -= 1;
            } else {
                // slope < 0: moving left increases f at rate -slope.
                let budget = r - v;
                debug_assert!(budget >= -1e-12);
                let reach = x + budget / slope; // slope negative => reach < x
                if left_bp.is_infinite() || reach >= left_bp {
                    return reach;
                }
                v += slope * (left_bp - x); // increases v
                x = left_bp;
                i -= 1;
            }
        }
    }

    /// Smallest `x ≥ start` with `f(x) = r` (walking right), assuming
    /// `f(start) ≤ r`.
    fn invert_right(&self, r: f64, start: f64) -> f64 {
        let mut i = self.xs.partition_point(|&b| b <= start);
        // Segment to the right of x has slope slopes[i].
        let mut x = start;
        let mut v = self.eval(start);
        loop {
            let slope = self.slopes[i.min(self.slopes.len() - 1)];
            let right_bp = if i >= self.xs.len() {
                f64::INFINITY
            } else {
                self.xs[i]
            };
            if slope < 0.0 {
                // Moving right decreases f; cross into the next segment.
                if right_bp.is_infinite() {
                    return f64::INFINITY;
                }
                v += slope * (right_bp - x);
                x = right_bp;
                i += 1;
            } else if slope == 0.0 {
                if right_bp.is_infinite() {
                    return f64::INFINITY;
                }
                x = right_bp;
                i += 1;
            } else {
                let budget = r - v;
                debug_assert!(budget >= -1e-12);
                let reach = x + budget / slope;
                if right_bp.is_infinite() || reach <= right_bp {
                    return reach;
                }
                v += slope * (right_bp - x);
                x = right_bp;
                i += 1;
            }
        }
    }

    /// The breakpoint abscissae.
    pub fn breakpoints(&self) -> &[f64] {
        &self.xs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f_simple() -> ConvexPiecewiseLinear {
        // f(x) = |x - 1| + |x - 3|
        ConvexPiecewiseLinear::from_weighted_abs(&[1.0, 3.0], &[1.0, 1.0], 0.0).unwrap()
    }

    #[test]
    fn eval_matches_closed_form() {
        let f = f_simple();
        let reference = |x: f64| (x - 1.0).abs() + (x - 3.0).abs();
        for i in -10..=20 {
            let x = i as f64 * 0.5;
            assert!((f.eval(x) - reference(x)).abs() < 1e-12, "mismatch at {x}");
        }
    }

    #[test]
    fn eval_weighted_with_offset() {
        let f = ConvexPiecewiseLinear::from_weighted_abs(&[0.0, 2.0, 5.0], &[0.5, 0.25, 0.25], 1.0)
            .unwrap();
        let reference =
            |x: f64| 0.5 * x.abs() + 0.25 * (x - 2.0).abs() + 0.25 * (x - 5.0).abs() + 1.0;
        for i in -8..=24 {
            let x = i as f64 * 0.5;
            assert!((f.eval(x) - reference(x)).abs() < 1e-12, "mismatch at {x}");
        }
    }

    #[test]
    fn min_is_weighted_median() {
        let f = f_simple();
        let (x, v) = f.min();
        // Minimum value 2 achieved on [1, 3]; lowest minimizer is 1.
        assert_eq!(x, 1.0);
        assert_eq!(v, 2.0);

        let g = ConvexPiecewiseLinear::from_weighted_abs(&[0.0, 10.0], &[3.0, 1.0], 0.0).unwrap();
        let (x, v) = g.min();
        assert_eq!(x, 0.0);
        assert_eq!(v, 10.0);
    }

    #[test]
    fn level_set_simple() {
        let f = f_simple();
        // f(x) <= 4  <=>  x in [0, 4].
        let (lo, hi) = f.level_set(4.0).unwrap();
        assert!((lo - 0.0).abs() < 1e-12);
        assert!((hi - 4.0).abs() < 1e-12);
        // At the minimum value the level set is the flat segment [1, 3].
        let (lo, hi) = f.level_set(2.0).unwrap();
        assert!((lo - 1.0).abs() < 1e-12);
        assert!((hi - 3.0).abs() < 1e-12);
        // Below the minimum: empty.
        assert!(f.level_set(1.9).is_none());
    }

    #[test]
    fn level_set_weighted() {
        let f = ConvexPiecewiseLinear::from_weighted_abs(&[0.0, 4.0], &[0.75, 0.25], 0.0).unwrap();
        // f(x) = 0.75|x| + 0.25|x-4|; min at 0 with value 1.
        let (lo, hi) = f.level_set(1.5).unwrap();
        // Left: f(x) = -x + 1 (x<0) => lo = -0.5.
        assert!((lo + 0.5).abs() < 1e-12);
        // Right: f(x) = 0.5x + 1 on [0,4] => hi = 1.
        assert!((hi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn level_set_endpoints_evaluate_to_r() {
        let f = ConvexPiecewiseLinear::from_weighted_abs(
            &[-3.0, -1.0, 2.0, 7.0],
            &[0.1, 0.4, 0.3, 0.2],
            0.25,
        )
        .unwrap();
        let (_, fmin) = f.min();
        for r in [fmin + 0.01, fmin + 0.5, fmin + 3.0] {
            let (lo, hi) = f.level_set(r).unwrap();
            assert!((f.eval(lo) - r).abs() < 1e-9, "f(lo)={} r={r}", f.eval(lo));
            assert!((f.eval(hi) - r).abs() < 1e-9, "f(hi)={} r={r}", f.eval(hi));
            assert!(lo <= hi);
        }
    }

    #[test]
    fn duplicate_anchors_merge() {
        let f = ConvexPiecewiseLinear::from_weighted_abs(&[2.0, 2.0, 5.0], &[0.3, 0.3, 0.4], 0.0)
            .unwrap();
        assert_eq!(f.breakpoints(), &[2.0, 5.0]);
        let reference = |x: f64| 0.6 * (x - 2.0).abs() + 0.4 * (x - 5.0).abs();
        for i in 0..=20 {
            let x = i as f64 * 0.5;
            assert!((f.eval(x) - reference(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_weight_anchors_dropped() {
        let f = ConvexPiecewiseLinear::from_weighted_abs(&[1.0, 9.0], &[1.0, 0.0], 0.0).unwrap();
        assert_eq!(f.breakpoints(), &[1.0]);
        assert_eq!(f.min(), (1.0, 0.0));
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(ConvexPiecewiseLinear::from_weighted_abs(&[], &[], 0.0).is_none());
        assert!(ConvexPiecewiseLinear::from_weighted_abs(&[1.0], &[1.0, 2.0], 0.0).is_none());
        assert!(ConvexPiecewiseLinear::from_weighted_abs(&[1.0], &[-1.0], 0.0).is_none());
        assert!(ConvexPiecewiseLinear::from_weighted_abs(&[1.0], &[0.0], 0.0).is_none());
        assert!(ConvexPiecewiseLinear::from_weighted_abs(&[f64::NAN], &[1.0], 0.0).is_none());
        assert!(ConvexPiecewiseLinear::from_weighted_abs(&[1.0], &[1.0], f64::NAN).is_none());
    }

    #[test]
    fn single_anchor() {
        let f = ConvexPiecewiseLinear::from_weighted_abs(&[5.0], &[2.0], 0.0).unwrap();
        assert_eq!(f.min(), (5.0, 0.0));
        assert_eq!(f.eval(7.0), 4.0);
        assert_eq!(f.eval(3.0), 4.0);
        let (lo, hi) = f.level_set(2.0).unwrap();
        assert!((lo - 4.0).abs() < 1e-12);
        assert!((hi - 6.0).abs() < 1e-12);
    }
}
