//! Derivative-free compass / pattern search.
//!
//! The expected-cost objectives of the uncertain k-center problem are convex
//! in the center location but not differentiable, so the experiments compute
//! *reference optima* with a compass search: probe `x ± δ·eᵢ` along every
//! axis, move to the best improvement, halve `δ` on failure. For convex
//! objectives compass search converges to the global optimum; for the
//! multi-center objectives (non-convex in the joint center vector) we use
//! multi-start and treat the result as an upper bound on the optimum.

use ukc_metric::Point;

/// Options controlling [`pattern_search`].
#[derive(Clone, Copy, Debug)]
pub struct PatternSearchOptions {
    /// Initial step size.
    pub initial_step: f64,
    /// Terminate once the step shrinks below this.
    pub min_step: f64,
    /// Hard cap on objective evaluations.
    pub max_evals: usize,
}

impl Default for PatternSearchOptions {
    fn default() -> Self {
        Self {
            initial_step: 1.0,
            min_step: 1e-9,
            max_evals: 1_000_000,
        }
    }
}

/// Minimizes `f` over `ℝ^d` starting from `start` by compass search.
///
/// Returns the best point found and its objective value. Deterministic:
/// probes axes in order, takes the single best improving probe per round.
pub fn pattern_search<F: FnMut(&Point) -> f64>(
    mut f: F,
    start: &Point,
    opts: PatternSearchOptions,
) -> (Point, f64) {
    let dim = start.dim();
    let mut x = start.clone();
    let mut fx = f(&x);
    let mut evals = 1usize;
    let mut step = opts.initial_step;
    while step >= opts.min_step && evals < opts.max_evals {
        let mut best: Option<(Point, f64)> = None;
        for axis in 0..dim {
            for &sign in &[1.0f64, -1.0] {
                let mut coords = x.coords().to_vec();
                coords[axis] += sign * step;
                let cand = Point::new(coords);
                let fc = f(&cand);
                evals += 1;
                if fc < fx && best.as_ref().is_none_or(|(_, bf)| fc < *bf) {
                    best = Some((cand, fc));
                }
                if evals >= opts.max_evals {
                    break;
                }
            }
        }
        match best {
            Some((bx, bf)) => {
                x = bx;
                fx = bf;
            }
            None => step *= 0.5,
        }
    }
    (x, fx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let target = Point::new(vec![3.0, -2.0]);
        let (x, fx) = pattern_search(
            |p| p.dist_sq(&target),
            &Point::origin(2),
            PatternSearchOptions::default(),
        );
        assert!(x.dist(&target) < 1e-6, "got {x:?}");
        assert!(fx < 1e-12);
    }

    #[test]
    fn minimizes_nonsmooth_max_of_distances() {
        // 1-center objective: max distance to three unit-triangle corners;
        // optimum is the circumcenter.
        let h = 3f64.sqrt() / 2.0;
        let pts = [
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![1.0, 0.0]),
            Point::new(vec![0.5, h]),
        ];
        let (x, fx) = pattern_search(
            |p| pts.iter().map(|q| p.dist(q)).fold(0.0, f64::max),
            &Point::origin(2),
            PatternSearchOptions::default(),
        );
        assert!((fx - 1.0 / 3f64.sqrt()).abs() < 1e-6);
        assert!(x.dist(&Point::new(vec![0.5, h / 3.0 * 1.0])) < 1e-4 || fx < 0.5774 + 1e-6);
    }

    #[test]
    fn respects_eval_budget() {
        let mut count = 0usize;
        let opts = PatternSearchOptions {
            max_evals: 10,
            ..Default::default()
        };
        let _ = pattern_search(
            |p| {
                count += 1;
                p.norm_sq()
            },
            &Point::new(vec![100.0]),
            opts,
        );
        assert!(count <= 10);
    }

    #[test]
    fn one_dimensional_abs() {
        let (x, fx) = pattern_search(
            |p| (p.x() - 1.25).abs(),
            &Point::scalar(-4.0),
            PatternSearchOptions::default(),
        );
        assert!((x.x() - 1.25).abs() < 1e-6);
        assert!(fx < 1e-6);
    }

    #[test]
    fn already_at_optimum() {
        let (x, fx) = pattern_search(
            |p| p.norm_sq(),
            &Point::origin(3),
            PatternSearchOptions::default(),
        );
        assert!(x.norm() < 1e-9);
        assert!(fx < 1e-12);
    }
}
