//! # ukc-geometry — computational-geometry substrate
//!
//! Geometric primitives needed by the uncertain k-center reproduction:
//!
//! * [`meb`] — minimum enclosing balls: exact Welzl in any dimension plus the
//!   Bădoiu–Clarkson (1+ε) core-set iteration. The deterministic 1-center of
//!   certain points is an MEB, and MEB radii appear as lower bounds in the
//!   k-center experiments.
//! * [`median`] — weighted geometric medians (Fermat–Weber points) via
//!   Weiszfeld's algorithm, plus the exact weighted median on a line. The
//!   paper's metric-space representative `P̃` (the 1-center of a single
//!   uncertain point) is exactly a Fermat–Weber point of the weighted
//!   location set.
//! * [`convex_pl`] — one-dimensional convex piecewise-linear functions
//!   (`Σ wᵢ·|x − aᵢ|` and friends): evaluation, minimization and level sets.
//!   These drive the exact 1-D solver of Table 1 row 8.
//! * [`pattern_search()`] — a derivative-free compass-search minimizer used to
//!   compute *reference optima* of the (non-smooth, but convex) expected
//!   cost objectives in the experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convex_pl;
pub mod meb;
pub mod median;
pub mod pattern_search;

pub use convex_pl::ConvexPiecewiseLinear;
pub use meb::{
    min_enclosing_ball, min_enclosing_ball_approx, min_enclosing_ball_approx_store, Ball,
};
pub use median::{geometric_median, weighted_median_1d, WeiszfeldOptions};
pub use pattern_search::{pattern_search, PatternSearchOptions};
