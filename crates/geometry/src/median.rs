//! Weighted geometric medians (Fermat–Weber points).
//!
//! For an uncertain point `P` with locations `a₁..a_z` and probabilities
//! `w₁..w_z`, the paper's metric representative `P̃` — the 1-center of the
//! *single* uncertain point — minimizes the expected distance
//! `f(x) = Σ wᵢ‖x − aᵢ‖`, i.e. it is the weighted geometric median.
//! [`geometric_median`] computes it in Euclidean space with Weiszfeld's
//! algorithm (with the standard singularity fix when an iterate lands on an
//! input point); [`weighted_median_1d`] is the exact 1-D special case.

use ukc_metric::Point;

/// Options controlling the Weiszfeld iteration.
#[derive(Clone, Copy, Debug)]
pub struct WeiszfeldOptions {
    /// Stop when successive iterates move less than this distance.
    pub tolerance: f64,
    /// Hard cap on iterations.
    pub max_iters: usize,
}

impl Default for WeiszfeldOptions {
    fn default() -> Self {
        Self {
            tolerance: 1e-10,
            max_iters: 10_000,
        }
    }
}

/// The weighted Fermat–Weber objective `Σ wᵢ‖x − aᵢ‖`.
pub fn fermat_weber_cost(x: &Point, points: &[Point], weights: &[f64]) -> f64 {
    points
        .iter()
        .zip(weights.iter())
        .map(|(p, &w)| w * x.dist(p))
        .sum()
}

/// Weighted geometric median by Weiszfeld's algorithm.
///
/// Returns `None` when the input is empty, lengths mismatch, a weight is
/// negative, or the total weight is zero. With a single distinct location
/// (or all weight on one location) the answer is that location.
///
/// The iteration is the classical fixed point
/// `x ← (Σ wᵢ aᵢ/‖x−aᵢ‖) / (Σ wᵢ/‖x−aᵢ‖)`; when an iterate coincides with
/// an input point `aⱼ`, Vardi–Zhang's optimality test is applied: `aⱼ` is
/// optimal iff the residual gradient norm of the other points is at most
/// `wⱼ`, otherwise the iterate steps along the residual direction.
pub fn geometric_median(
    points: &[Point],
    weights: &[f64],
    opts: WeiszfeldOptions,
) -> Option<Point> {
    if points.is_empty() || points.len() != weights.len() {
        return None;
    }
    if weights.iter().any(|&w| w.is_nan() || w < 0.0) {
        return None;
    }
    let total: f64 = weights.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        return None;
    }
    // Start at the weighted centroid: inside the convex hull and cheap.
    let mut x = Point::weighted_centroid(points, weights)?;
    // Scale used to decide "coincides with an input point".
    let spread = points
        .iter()
        .map(|p| x.dist(p))
        .fold(0.0, f64::max)
        .max(1e-300);
    let coincide_tol = 1e-12 * spread.max(1.0);

    for _ in 0..opts.max_iters {
        let mut num = Point::origin(x.dim());
        let mut den = 0.0;
        // Residual gradient of the non-coincident points, and the weight of a
        // coincident point if any (for the Vardi–Zhang step).
        let mut grad = Point::origin(x.dim());
        let mut coincident_weight = 0.0;
        for (p, &w) in points.iter().zip(weights.iter()) {
            if w == 0.0 {
                continue;
            }
            let d = x.dist(p);
            if d <= coincide_tol {
                coincident_weight += w;
                continue;
            }
            let inv = w / d;
            num.add_scaled_in_place(inv, p);
            den += inv;
            grad.add_scaled_in_place(inv, &(p - &x));
        }
        if den == 0.0 {
            // All weight sits on the current point: optimal.
            return Some(x);
        }
        let next = if coincident_weight > 0.0 {
            let r = grad.norm();
            if r <= coincident_weight {
                // Vardi–Zhang optimality condition at the coincident point.
                return Some(x);
            }
            // Step away from the singular point along the residual.
            let t = (1.0 - coincident_weight / r).max(0.0);
            x.add_scaled(t / den, &grad)
        } else {
            num.scale(1.0 / den)
        };
        let moved = x.dist(&next);
        x = next;
        if moved <= opts.tolerance {
            break;
        }
    }
    Some(x)
}

/// Exact weighted median on the real line: a minimizer of `Σ wᵢ·|x − aᵢ|`.
///
/// Returns the *lowest* minimizer (the left endpoint of the minimizing
/// interval when the total weight splits exactly in half). Returns `None`
/// under the same input conditions as [`geometric_median`].
pub fn weighted_median_1d(values: &[f64], weights: &[f64]) -> Option<f64> {
    if values.is_empty() || values.len() != weights.len() {
        return None;
    }
    if weights.iter().any(|&w| w.is_nan() || w < 0.0) {
        return None;
    }
    let total: f64 = weights.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        return None;
    }
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&i, &j| {
        values[i]
            .partial_cmp(&values[j])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut acc = 0.0;
    for &i in &order {
        acc += weights[i];
        if acc >= total / 2.0 {
            return Some(values[i]);
        }
    }
    Some(values[*order.last().expect("non-empty")])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_single_point() {
        let pts = vec![Point::new(vec![3.0, 4.0])];
        let m = geometric_median(&pts, &[1.0], WeiszfeldOptions::default()).unwrap();
        assert!(m.dist(&pts[0]) < 1e-9);
    }

    #[test]
    fn median_of_two_points_is_between() {
        // Any point on the segment minimizes; Weiszfeld starting from the
        // centroid stays on it.
        let pts = vec![Point::new(vec![0.0, 0.0]), Point::new(vec![2.0, 0.0])];
        let m = geometric_median(&pts, &[1.0, 1.0], WeiszfeldOptions::default()).unwrap();
        let cost = fermat_weber_cost(&m, &pts, &[1.0, 1.0]);
        assert!((cost - 2.0).abs() < 1e-9);
    }

    #[test]
    fn heavy_weight_dominates() {
        // With w_j > half the total weight, the median is exactly a_j.
        let pts = vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![10.0, 0.0]),
            Point::new(vec![0.0, 10.0]),
        ];
        let w = [0.7, 0.2, 0.1];
        let m = geometric_median(&pts, &w, WeiszfeldOptions::default()).unwrap();
        assert!(
            m.dist(&pts[0]) < 1e-6,
            "median {m:?} should be at the heavy point"
        );
    }

    #[test]
    fn equilateral_median_is_centroid() {
        let h = 3f64.sqrt() / 2.0;
        let pts = vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![1.0, 0.0]),
            Point::new(vec![0.5, h]),
        ];
        let w = [1.0, 1.0, 1.0];
        let m = geometric_median(&pts, &w, WeiszfeldOptions::default()).unwrap();
        let centroid = Point::weighted_centroid(&pts, &w).unwrap();
        assert!(m.dist(&centroid) < 1e-7);
    }

    #[test]
    fn median_cost_no_worse_than_grid() {
        // Compare against a brute-force grid search on a wide triangle.
        let pts = vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![4.0, 0.0]),
            Point::new(vec![1.0, 3.0]),
        ];
        let w = [1.0, 2.0, 1.5];
        let m = geometric_median(&pts, &w, WeiszfeldOptions::default()).unwrap();
        let mc = fermat_weber_cost(&m, &pts, &w);
        let mut best = f64::INFINITY;
        for i in 0..=80 {
            for j in 0..=80 {
                let g = Point::new(vec![i as f64 * 0.05, j as f64 * 0.05]);
                best = best.min(fermat_weber_cost(&g, &pts, &w));
            }
        }
        assert!(mc <= best + 1e-4, "weiszfeld {mc} vs grid {best}");
    }

    #[test]
    fn zero_weights_are_ignored() {
        let pts = vec![Point::new(vec![0.0]), Point::new(vec![100.0])];
        let m = geometric_median(&pts, &[1.0, 0.0], WeiszfeldOptions::default()).unwrap();
        assert!(m.dist(&pts[0]) < 1e-9);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let pts = vec![Point::new(vec![0.0])];
        assert!(geometric_median(&[], &[], WeiszfeldOptions::default()).is_none());
        assert!(geometric_median(&pts, &[1.0, 2.0], WeiszfeldOptions::default()).is_none());
        assert!(geometric_median(&pts, &[-1.0], WeiszfeldOptions::default()).is_none());
        assert!(geometric_median(&pts, &[0.0], WeiszfeldOptions::default()).is_none());
    }

    #[test]
    fn weighted_median_1d_basic() {
        assert_eq!(
            weighted_median_1d(&[1.0, 2.0, 3.0], &[1.0, 1.0, 1.0]),
            Some(2.0)
        );
        assert_eq!(
            weighted_median_1d(&[1.0, 2.0, 3.0], &[5.0, 1.0, 1.0]),
            Some(1.0)
        );
        assert_eq!(
            weighted_median_1d(&[3.0, 1.0, 2.0], &[1.0, 1.0, 5.0]),
            Some(2.0)
        );
    }

    #[test]
    fn weighted_median_1d_half_split_takes_left() {
        // Weights split exactly in half at value 1.0.
        assert_eq!(weighted_median_1d(&[1.0, 2.0], &[1.0, 1.0]), Some(1.0));
    }

    #[test]
    fn weighted_median_1d_minimizes_objective() {
        let vals = [0.0, 1.0, 4.0, 9.0, 10.0];
        let w = [0.1, 0.3, 0.2, 0.25, 0.15];
        let med = weighted_median_1d(&vals, &w).unwrap();
        let cost = |x: f64| -> f64 {
            vals.iter()
                .zip(w.iter())
                .map(|(v, ww)| ww * (v - x).abs())
                .sum()
        };
        let c = cost(med);
        for i in 0..=100 {
            let x = i as f64 * 0.1;
            assert!(c <= cost(x) + 1e-12, "median {med} beaten at {x}");
        }
    }

    #[test]
    fn weighted_median_1d_invalid() {
        assert!(weighted_median_1d(&[], &[]).is_none());
        assert!(weighted_median_1d(&[1.0], &[1.0, 2.0]).is_none());
        assert!(weighted_median_1d(&[1.0], &[-1.0]).is_none());
        assert!(weighted_median_1d(&[1.0], &[0.0]).is_none());
    }

    #[test]
    fn weiszfeld_handles_coincident_start() {
        // Centroid coincides with an input point; the Vardi–Zhang branch
        // must still move toward the optimum.
        let pts = vec![
            Point::new(vec![-1.0, 0.0]),
            Point::new(vec![1.0, 0.0]),
            Point::new(vec![0.0, 3.0]),
            Point::new(vec![0.0, -3.0]),
            Point::new(vec![0.0, 0.0]), // equals the centroid
        ];
        let w = [1.0, 1.0, 1.0, 1.0, 1.0];
        let m = geometric_median(&pts, &w, WeiszfeldOptions::default()).unwrap();
        // The configuration is symmetric; optimum is the origin.
        assert!(m.norm() < 1e-6, "median {m:?} should be origin");
    }
}
