//! Sensor network: place k base stations for sensors with noisy positions.
//!
//! The motivating workload from the paper's introduction: database systems
//! storing uncertain sensor sightings. Each sensor reports a handful of
//! candidate positions with confidence weights; we must place base stations
//! minimizing the expected worst-case sensor-to-station distance, with each
//! sensor bound to one station (the assigned version).
//!
//! The example compares the paper's three assignment rules against the
//! naive baselines, on a workload with heavy-tailed confidence weights
//! (one dominant sighting plus stragglers — the realistic case).
//!
//! ```text
//! cargo run --release --example sensor_network
//! ```

use uncertain_kcenter::prelude::*;

fn main() {
    let k = 4;
    let set = clustered(
        /* seed */ 2024,
        /* n */ 60,
        /* z */ 5,
        /* dim */ 2,
        /* clusters */ 4,
        /* cluster radius */ 6.0,
        /* location spread */ 2.0,
        ProbModel::HeavyTail,
    );
    let lb = lower_bound_euclidean(&set, k);

    println!(
        "sensor network: {} sensors, {} candidate positions each, k = {k}",
        set.n(),
        set.max_z()
    );
    println!("certified lower bound on any solution: {:.4}\n", lb);
    println!("{:<44} {:>10} {:>8}", "method", "Ecost", "vs LB");
    println!("{}", "-".repeat(66));

    let report = |name: &str, ecost: f64| {
        println!("{name:<44} {ecost:>10.4} {:>8.3}", ecost / lb);
    };

    // The paper's pipelines: one Problem, a config per rule.
    let problem = Problem::euclidean(set.clone(), k).expect("valid instance");
    let cfg = |rule| {
        SolverConfig::builder()
            .rule(rule)
            .lower_bound(false)
            .build()
            .expect("valid config")
    };
    for (name, rule) in [
        (
            "paper: expected-distance rule (factor 6)",
            AssignmentRule::ExpectedDistance,
        ),
        (
            "paper: expected-point rule (factor 4)",
            AssignmentRule::ExpectedPoint,
        ),
        (
            "paper: 1-center rule (metric machinery)",
            AssignmentRule::OneCenter,
        ),
    ] {
        let sol = problem
            .solve(&cfg(rule))
            .expect("Euclidean supports every rule");
        report(name, sol.ecost);
    }
    // Tighter certain solver: factor 3+eps.
    let grid_cfg = SolverConfig::builder()
        .rule(AssignmentRule::ExpectedPoint)
        .strategy(CertainStrategy::Grid)
        .eps(0.25)
        .lower_bound(false)
        .build()
        .expect("valid config");
    let grid = problem
        .solve(&grid_cfg)
        .expect("grid is Euclidean-supported");
    report("paper: EP rule + (1+ε) grid (factor 3.25)", grid.ecost);

    // Baselines.
    report(
        "baseline: most-likely location + Gonzalez",
        mode_baseline(&set, k, &Euclidean).ecost,
    );
    report(
        "baseline: all locations + Gonzalez",
        all_locations_baseline(&set, k, &Euclidean).ecost,
    );
    report(
        "baseline: 30-sample realizations + Gonzalez",
        sample_union_baseline(&set, k, 30, 99).ecost,
    );

    // How tight is the exact cost vs a Monte-Carlo estimate? (sanity view
    // for practitioners used to sampling)
    let sol = problem
        .solve(&cfg(AssignmentRule::ExpectedPoint))
        .expect("Euclidean supports every rule");
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mc = ecost_monte_carlo(
        &set,
        &sol.centers,
        Some(&sol.assignment),
        &Euclidean,
        50_000,
        &mut rng,
    );
    println!("\nexact Ecost of the EP solution:   {:.5}", sol.ecost);
    println!(
        "50k-sample Monte-Carlo estimate:  {:.5} ± {:.5}",
        mc.mean, mc.std_error
    );
}
