//! Quickstart: cluster uncertain points with the paper's pipeline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use uncertain_kcenter::prelude::*;

fn main() {
    // 40 uncertain points in R^2: each has 4 possible locations scattered
    // around a nominal position near one of 3 cluster sites, with random
    // location probabilities. Fully deterministic in the seed.
    let set = clustered(
        /* seed */ 7,
        /* n */ 40,
        /* z */ 4,
        /* dim */ 2,
        /* clusters */ 3,
        /* cluster radius */ 5.0,
        /* location spread */ 1.0,
        ProbModel::Random,
    );
    let k = 3;

    println!(
        "instance: n={} uncertain points, z={} locations each, |Ω| = {} realizations",
        set.n(),
        set.max_z(),
        set.realization_count()
    );

    // The paper's algorithm (Theorem 2.2 / Remark 3.1) as a validated
    // request: replace each point by its expected point, run Gonzalez,
    // assign by expected point. Invalid input (k = 0, k > n, ...) comes
    // back as a typed SolveError instead of a panic.
    let problem = Problem::euclidean(set, k).expect("valid instance");
    let config = SolverConfig::builder()
        .rule(AssignmentRule::ExpectedPoint)
        .build()
        .expect("valid config");
    let sol = problem
        .solve(&config)
        .expect("EP rule is Euclidean-supported");
    println!("\npaper pipeline (EP rule, Gonzalez backend):");
    for (i, c) in sol.centers.iter().enumerate() {
        let members = sol.assignment.iter().filter(|&&a| a == i).count();
        println!(
            "  center {i}: ({:7.2}, {:7.2})  serving {members} points",
            c[0], c[1]
        );
    }
    println!("  exact expected cost Ecost = {:.4}", sol.ecost);

    // Every solve certifies and instruments itself: a lower bound on what
    // ANY solution can achieve (the ratio is guaranteed <= 4 by the
    // paper's Theorem 2.2 + Remark 3.1), per-stage timings, and
    // distance-evaluation counts.
    let lb = sol
        .report
        .lower_bound
        .expect("bound certification is on by default");
    println!("\ncertified lower bound on the optimum: {lb:.4}");
    println!(
        "observed ratio <= {:.3}   (theorem guarantees <= 4)",
        sol.ecost / lb
    );
    println!(
        "solve took {:.2?} ({} distance evaluations; certain solve {:.2?}, exact cost {:.2?})",
        sol.report.timings.total,
        sol.report.distance_evals.total(),
        sol.report.timings.certain_solve,
        sol.report.timings.cost,
    );

    // Upgrading the certain solver tightens the guarantee to 3+eps — one
    // builder knob, same problem object.
    let eps = 0.25;
    let grid_config = SolverConfig::builder()
        .rule(AssignmentRule::ExpectedPoint)
        .strategy(CertainStrategy::Grid)
        .eps(eps)
        .build()
        .expect("valid config");
    let grid = problem
        .solve(&grid_config)
        .expect("grid is Euclidean-supported");
    println!(
        "\nwith the (1+ε) grid backend (ε={eps}): Ecost = {:.4}, ratio <= {:.3} (guarantee <= {:.2})",
        grid.ecost,
        grid.ecost / lb,
        3.0 + eps
    );
}
