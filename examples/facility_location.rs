//! Facility location on a road network — the general-metric case.
//!
//! Customers move between a few known haunts (shops, home, work) on a road
//! network; each customer is an uncertain point over graph vertices with
//! visit-frequency probabilities. We must open k facilities at vertices,
//! binding each customer to one facility, minimizing the expected
//! worst-case travel distance. This is exactly the paper's Theorems 2.6 /
//! 2.7 setting: an arbitrary finite metric space where no expected point
//! exists and the 1-center representative `P̃` takes its place.
//!
//! ```text
//! cargo run --release --example facility_location
//! ```

use std::sync::Arc;
use uncertain_kcenter::prelude::*;

fn main() {
    // A 6x8 road grid with 1.0 km blocks, plus a few diagonal shortcuts.
    let mut g = WeightedGraph::grid(6, 8, 1.0);
    for &(u, v) in &[(0usize, 9usize), (20, 29), (38, 47)] {
        g.add_edge(u, v, 1.2).expect("valid shortcut");
    }
    let road = g.shortest_path_metric().expect("grid is connected");

    // 30 customers, each frequenting 4 vertices with random frequencies.
    let set = on_finite_metric(11, road.len(), 30, 4, ProbModel::Random);
    let pool = set.location_pool();
    let k = 3;

    println!(
        "road network: {} vertices; {} customers with {} haunts each; k = {k}",
        road.len(),
        set.n(),
        set.max_z()
    );

    let lb = lower_bound_metric(&set, k, &pool, &road);
    println!("certified lower bound: {:.4}\n", lb);
    println!("{:<52} {:>10} {:>8}", "method", "Ecost", "vs LB");
    println!("{}", "-".repeat(74));

    // One shared problem substrate (Arc'd metric + pool), one config per
    // method — the request/response shape the serving layer uses.
    let metric: Arc<dyn Metric<usize> + Send + Sync> = Arc::new(road.clone());
    let pool_arc: Arc<[usize]> = Arc::from(pool.clone());
    let problem =
        Problem::in_metric_shared(set.clone(), k, metric, pool_arc).expect("valid instance");
    let cfg = |rule, strategy| {
        SolverConfig::builder()
            .rule(rule)
            .strategy(strategy)
            .lower_bound(false)
            .build()
            .expect("valid config")
    };

    // Theorem 2.7: 1-center representatives + OC assignment (factor 5+2ε).
    let oc = problem
        .solve(&cfg(AssignmentRule::OneCenter, CertainStrategy::Gonzalez))
        .expect("OC rule is metric-supported");
    println!(
        "{:<52} {:>10.4} {:>8.3}",
        "paper Thm 2.7: 1-center rule (5+2ε)",
        oc.ecost,
        oc.ecost / lb
    );

    // Theorem 2.6: same centers, expected-distance assignment (7+2ε).
    let ed = problem
        .solve(&cfg(
            AssignmentRule::ExpectedDistance,
            CertainStrategy::Gonzalez,
        ))
        .expect("ED rule is metric-supported");
    println!(
        "{:<52} {:>10.4} {:>8.3}",
        "paper Thm 2.6: expected-distance rule (7+2ε)",
        ed.ecost,
        ed.ecost / lb
    );

    // Exact discrete certain solver on the representatives.
    let exact = problem
        .solve(&cfg(
            AssignmentRule::OneCenter,
            CertainStrategy::ExactDiscrete,
        ))
        .expect("exact discrete is metric-supported");
    println!(
        "{:<52} {:>10.4} {:>8.3}",
        "paper + exact discrete certain solver",
        exact.ecost,
        exact.ecost / lb
    );

    // Naive baseline: most likely haunt.
    let mode = mode_baseline(&set, k, &road);
    println!(
        "{:<52} {:>10.4} {:>8.3}",
        "baseline: most-likely haunt + Gonzalez",
        mode.ecost,
        mode.ecost / lb
    );

    // Show the opened facilities of the best method.
    let best = if exact.ecost <= oc.ecost { &exact } else { &oc };
    println!("\nopened facilities (vertex ids): {:?}", best.centers);
    let served: Vec<usize> = (0..k)
        .map(|c| best.assignment.iter().filter(|&&a| a == c).count())
        .collect();
    println!("customers per facility: {served:?}");
}
