//! Streaming uncertain k-center with bounded memory: clustering a long
//! feed of uncertain points through the `ukc-stream` subsystem (paper
//! future-work direction; reference [25] in its bibliography covers the
//! streaming probabilistic 1-center).
//!
//! The doubling/coreset summary keeps an O(budget)-point working set
//! whatever the stream length; finalization runs the configured certain
//! solver on the weighted summary and certifies radius bounds. Compare
//! the deprecated `StreamingUncertainKCenter`, which retained every
//! seen point.
//!
//! ```text
//! cargo run --release --example stream_processing
//! ```

use uncertain_kcenter::prelude::*;

fn main() {
    let k = 4;
    // A long stream of uncertain sensor sightings arriving in chunks.
    let stream = clustered(77, 5_000, 4, 2, 4, 6.0, 1.5, ProbModel::Random);

    // The streaming solver takes the same SolverConfig as the offline
    // pipeline; its strategy drives the finalize solve on the summary.
    let config = SolverConfig::builder()
        .rule(AssignmentRule::ExpectedDistance)
        .lower_bound(false)
        .build()
        .expect("valid config");
    let mut solver = StreamSolver::builder(k)
        .config(config.clone())
        .budget(8 * k)
        .build()
        .expect("k > 0");

    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>10}",
        "seen", "summary", "Ecost", "vs offline", "peak mem"
    );
    for (i, chunk) in stream.points().chunks(250).enumerate() {
        let epoch = solver.push_chunk(chunk).expect("chunk is valid");
        if !(i + 1).is_multiple_of(5) {
            continue;
        }
        // Checkpoint: finalize the stream (a snapshot — ingestion
        // continues) and evaluate its centers offline on the prefix.
        let solution = solver.solution().expect("non-empty");
        let seen = solution.stream.points as usize;
        let prefix = UncertainSet::new(stream.points()[..seen].to_vec());
        let assignment = assign_ed(&prefix, &solution.centers, &Euclidean);
        let streamed_cost = ecost_assigned(&prefix, &solution.centers, &assignment, &Euclidean);
        let offline = Problem::euclidean(prefix, k)
            .expect("valid prefix")
            .solve(&config)
            .expect("ED rule is Euclidean-supported");
        println!(
            "{seen:>8} {:>8} {streamed_cost:>12.4} {:>12.3} {:>10}",
            epoch.summary_len,
            streamed_cost / offline.ecost,
            solution.stream.memory_peak_points,
        );
    }

    let report = solver.report();
    println!(
        "\nthe summary held at most {} of {} points ({} epochs, digest {});\n\
         each insertion cost O(z + budget), independent of the stream length.",
        report.memory_peak_points,
        report.points,
        report.epochs,
        uncertain_kcenter::core::digest_hex(report.digest),
    );
}
