//! Streaming uncertain k-center: clustering uncertain points one at a
//! time with O(k) state (paper future-work direction; reference [25] in
//! its bibliography covers the streaming probabilistic 1-center).
//!
//! The doubling summary keeps at most k expected-point centers with an
//! 8-approximation invariant; finalization binds each seen point by the
//! expected-distance rule and reports the *exact* expected cost.
//!
//! ```text
//! cargo run --release --example stream_processing
//! ```

use uncertain_kcenter::extensions::StreamingUncertainKCenter;
use uncertain_kcenter::prelude::*;

fn main() {
    let k = 4;
    // A long stream of uncertain sensor sightings arriving one by one.
    let stream = clustered(77, 5_000, 4, 2, 4, 6.0, 1.5, ProbModel::Random);

    // The streaming clusterer takes the same SolverConfig as the offline
    // pipeline; its rule drives finalization.
    let config = SolverConfig::builder()
        .rule(AssignmentRule::ExpectedDistance)
        .lower_bound(false)
        .build()
        .expect("valid config");
    let mut clusterer = StreamingUncertainKCenter::with_config(k, &config).expect("k > 0");
    let mut checkpoints = vec![50usize, 500, 5_000];
    checkpoints.reverse();

    println!(
        "{:>8} {:>10} {:>12} {:>12}",
        "seen", "centers", "Ecost", "vs offline"
    );
    for (i, up) in stream.iter().enumerate() {
        clusterer.insert(up.clone());
        if Some(&(i + 1)) == checkpoints.last() {
            checkpoints.pop();
            let (centers, _, cost) = clusterer.finalize().expect("non-empty");
            // Offline comparison on the prefix seen so far.
            let prefix = UncertainSet::new(stream.points()[..=i].to_vec());
            let offline = Problem::euclidean(prefix, k)
                .expect("valid prefix")
                .solve(&config)
                .expect("ED rule is Euclidean-supported");
            println!(
                "{:>8} {:>10} {:>12.4} {:>12.3}",
                i + 1,
                centers.len(),
                cost,
                cost / offline.ecost
            );
        }
    }

    println!(
        "\nthe summary held at most {k} centers throughout; each insertion cost O(z + k)\n\
         (expected point + distance checks), independent of the stream length."
    );
}
