//! One-dimensional uncertain k-center: the exact solver and the factor-3
//! lift (paper Table 1 row 8).
//!
//! Workload: readings along a pipeline (positions on a line) with
//! measurement uncertainty. The exact Wang–Zhang-style solver minimizes
//! the maximum expected distance; Theorem 2.3 lifts it to a
//! 3-approximation of the unrestricted assigned optimum.
//!
//! ```text
//! cargo run --release --example line_clustering
//! ```

use uncertain_kcenter::prelude::*;

fn main() {
    let set = line_instance(
        /* seed */ 31,
        /* n */ 200,
        /* z */ 6,
        /* span km */ 500.0,
        /* spread */ 4.0,
        ProbModel::Random,
    );
    println!(
        "pipeline readings: n = {}, z = {} candidate positions each",
        set.n(),
        set.max_z()
    );

    println!(
        "\n{:<6} {:>14} {:>14} {:>10}",
        "k", "med-cost", "Ecost (ED)", "vs LB"
    );
    println!("{}", "-".repeat(48));
    for k in [1usize, 2, 4, 8, 16] {
        let sol = solve_one_d(&set, k);
        let lb = lower_bound_euclidean(&set, k);
        println!(
            "{k:<6} {:>14.4} {:>14.4} {:>10.3}",
            sol.med_cost,
            sol.ecost_ed,
            sol.ecost_ed / lb
        );
    }

    // Compare the exact 1-D solver against the generic Euclidean pipeline
    // on the same instance: the specialized solver should never lose on
    // the med-cost objective, and usually wins on Ecost too.
    let k = 4;
    let exact = solve_one_d(&set, k);
    let generic = Problem::euclidean(set.clone(), k)
        .expect("valid instance")
        .solve(
            &SolverConfig::builder()
                .rule(AssignmentRule::ExpectedDistance)
                .lower_bound(false)
                .build()
                .expect("valid config"),
        )
        .expect("ED rule is Euclidean-supported");
    println!("\nk = {k}: exact 1-D solver Ecost = {:.4}", exact.ecost_ed);
    println!("        generic pipeline Ecost = {:.4}", generic.ecost);

    // Factor-3 certificate on a tiny instance where the unrestricted
    // optimum is computable by brute force.
    let tiny = line_instance(5, 5, 3, 40.0, 2.0, ProbModel::Random);
    let pool = tiny.location_pool();
    let opt = brute_force_unrestricted(&tiny, &pool, 2, &Euclidean, BruteForceLimits::default())
        .expect("tiny instance within budget");
    let sol = solve_one_d(&tiny, 2);
    println!(
        "\ntiny instance: 1-D solver Ecost = {:.4}, unrestricted optimum = {:.4}, ratio = {:.3} (theorem: <= 3)",
        sol.ecost_ed,
        opt.ecost,
        sol.ecost_ed / opt.ecost
    );
}
