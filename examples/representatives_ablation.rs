//! Ablation: which representative should stand in for an uncertain point?
//!
//! The paper's whole approach is "replace each uncertain point by one
//! certain point" — so the choice of that point is the design decision.
//! This example stresses the three candidates on the *ring* workload,
//! built to punish the expected point: every location sits on a circle,
//! so weighted centroids collapse toward the ring's interior, off the
//! data manifold. The 1-center (Fermat–Weber) representative stays closer
//! to the mass, and the mode ignores the spread entirely.
//!
//! ```text
//! cargo run --release --example representatives_ablation
//! ```

use uncertain_kcenter::prelude::*;

fn main() {
    let k = 4;
    println!(
        "{:<26} {:>12} {:>12} {:>12}",
        "workload", "EP rule (P̄)", "OC rule (P̃)", "mode"
    );
    println!("{}", "-".repeat(66));
    for (name, set) in [
        (
            "ring (spread 0.30 rad)",
            ring(8, 40, 5, 50.0, 0.30, ProbModel::Random),
        ),
        (
            "ring (spread 0.80 rad)",
            ring(8, 40, 5, 50.0, 0.80, ProbModel::Random),
        ),
        (
            "clustered",
            clustered(8, 40, 5, 2, 4, 5.0, 1.5, ProbModel::Random),
        ),
        (
            "two-scale (q = 0.3)",
            two_scale(8, 40, 5, 2, 1.0, 150.0, 0.3),
        ),
    ] {
        let problem = Problem::euclidean(set.clone(), k).expect("valid instance");
        let cfg = |rule| {
            SolverConfig::builder()
                .rule(rule)
                .lower_bound(false)
                .build()
                .expect("valid config")
        };
        let ep = problem
            .solve(&cfg(AssignmentRule::ExpectedPoint))
            .expect("EP rule is Euclidean-supported");
        let oc = problem
            .solve(&cfg(AssignmentRule::OneCenter))
            .expect("OC rule is Euclidean-supported");
        let mode = mode_baseline(&set, k, &Euclidean);
        println!(
            "{name:<26} {:>12.4} {:>12.4} {:>12.4}",
            ep.ecost, oc.ecost, mode.ecost
        );
    }

    println!(
        "\nreading: P̄ (expected point) backs the paper's best Euclidean factors and wins \n\
         or ties on every workload here — including the ring built to punish it — because \n\
         the certain k-center step only needs *consistent* representatives, not on-manifold \n\
         ones. The mode collapses on two-scale data (it ignores the teleport mass entirely), \n\
         which is exactly why the paper replaces points by expectations rather than modes."
    );
}
