//! Serving the solver over HTTP, in-process.
//!
//! Starts a `ukc-server` on an ephemeral loopback port, uploads an
//! instance, solves it twice (the second response comes from the
//! solution cache), and reads the ops counters back from `/metrics` —
//! the embedded-server workflow the integration tests and benches use.
//!
//! Run with: `cargo run --release --example solver_service`

use ukc_json::format::JsonInstance;
use ukc_json::Json;
use ukc_server::client::ClientConn;
use ukc_server::{serve, ServerConfig};
use ukc_uncertain::generators::{clustered, ProbModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let handle = serve(ServerConfig::default())?;
    println!("serving on {}", handle.addr());
    let mut conn = ClientConn::connect(handle.addr())?;

    // Upload: the ID is a canonical content digest, so re-uploading the
    // same instance (in any point order) dedupes onto the same entry.
    let set = clustered(7, 40, 4, 2, 3, 5.0, 1.0, ProbModel::Random);
    let body = JsonInstance::from_set(&set).to_json().compact();
    let upload = conn.request("POST", "/instances", Some(&body))?;
    let doc = Json::parse(&upload.body)?;
    let id = doc.get("id").and_then(Json::as_str).unwrap().to_string();
    println!("uploaded instance {id} (status {})", upload.status);

    // Solve twice with the same (instance, config): the first pays the
    // solve, the second is served from the (digest, config) cache.
    let solve_body = r#"{"k": 3, "rule": "ep", "solver": "gonzalez"}"#;
    for attempt in 1..=2 {
        let response = conn.request("POST", &format!("/instances/{id}/solve"), Some(solve_body))?;
        let doc = Json::parse(&response.body)?;
        println!(
            "solve #{attempt}: ecost {:.4}, cached: {}",
            doc.get("ecost").and_then(Json::as_f64).unwrap(),
            doc.get("cached").and_then(Json::as_bool).unwrap(),
        );
    }

    // The ops surface shows exactly what happened.
    let metrics = conn.request("GET", "/metrics", None)?;
    let doc = Json::parse(&metrics.body)?;
    let cache = doc.get("cache").unwrap();
    println!(
        "cache: {} hit(s), {} miss(es), hit rate {:.2}",
        cache.get("hits").and_then(Json::as_f64).unwrap(),
        cache.get("misses").and_then(Json::as_f64).unwrap(),
        cache.get("hit_rate").and_then(Json::as_f64).unwrap(),
    );

    handle.shutdown();
    Ok(())
}
