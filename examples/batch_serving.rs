//! Batch serving: many uncertain k-center queries over one substrate,
//! fanned out with `solve_batch` — the request/response shape a
//! production deployment runs.
//!
//! Builds one road network (an `Arc`-shared metric + candidate pool),
//! then solves 24 independent facility-location queries against it in a
//! single batch call. The batch output is bit-identical to the
//! sequential loop, so sharding across workers never changes answers.
//!
//! ```text
//! cargo run --release --example batch_serving
//! ```

use std::sync::Arc;
use uncertain_kcenter::prelude::*;

fn main() {
    // One substrate, shared by every query: a 7x7 road grid.
    let road = WeightedGraph::grid(7, 7, 1.0)
        .shortest_path_metric()
        .expect("grid is connected");
    let pool: Arc<[usize]> = Arc::from(road.ids());
    let metric: Arc<dyn Metric<usize> + Send + Sync> = Arc::new(road.clone());

    // 24 incoming requests: different customer sets, same road network.
    let problems: Vec<Problem<usize>> = (0..24)
        .map(|seed| {
            let customers = on_finite_metric(seed, road.len(), 20, 3, ProbModel::Random);
            Problem::in_metric_shared(customers, 3, Arc::clone(&metric), Arc::clone(&pool))
                .expect("valid request")
        })
        .collect();

    // One config for the whole batch: Theorem 2.7's 1-center rule.
    let config = SolverConfig::builder()
        .rule(AssignmentRule::OneCenter)
        .build()
        .expect("valid config");

    let batch = solve_batch(&problems, &config);
    let sequential: Vec<_> = problems.iter().map(|p| p.solve(&config)).collect();

    println!(
        "{:>6} {:>10} {:>10} {:>8} {:>12}",
        "query", "Ecost", "bound", "ratio", "dist evals"
    );
    let mut total_evals = 0u64;
    for (i, result) in batch.iter().enumerate() {
        let sol = result.as_ref().expect("OC rule is metric-supported");
        let lb = sol.report.lower_bound.expect("bound certification is on");
        total_evals += sol.report.distance_evals.total();
        println!(
            "{i:>6} {:>10.4} {:>10.4} {:>8.3} {:>12}",
            sol.ecost,
            lb,
            sol.ecost / lb.max(f64::MIN_POSITIVE),
            sol.report.distance_evals.total()
        );
    }
    println!("\ntotal distance evaluations across the batch: {total_evals}");

    // Determinism check: the fan-out answers exactly match the loop.
    let identical = batch.iter().zip(&sequential).all(|(a, b)| match (a, b) {
        (Ok(x), Ok(y)) => {
            x.centers == y.centers && x.assignment == y.assignment && x.ecost == y.ecost
        }
        (Err(x), Err(y)) => x == y,
        _ => false,
    });
    println!("batch output bit-identical to the sequential loop: {identical}");
    assert!(identical);
}
